//! Interactive establishment of the almost-everywhere communication tree —
//! a simplified King–Saia–Sanwalani–Vee (SODA '06) committee election,
//! realizing the *establishment* half of `f_ae-comm` with real metered
//! messages instead of the analytically-charged cost model
//! ([`pba_aetree::fae::charge_establishment`]).
//!
//! Structure (a tournament of group elections):
//!
//! 1. parties are partitioned by index into groups of `polylog(n)` size;
//! 2. each group runs the robust committee coin toss
//!    ([`crate::vss_coin`]) and agrees on a group seed;
//! 3. the seed pseudorandomly elects half the group as *representatives*;
//! 4. representatives form the next round's population; repeat until one
//!    group remains, whose coin becomes the **master seed**;
//! 5. the tree (committees + slot assignment) is derived from the master
//!    seed — randomness fixed *after* corruption, by an interactive
//!    protocol, exactly the property the paper's model requires of
//!    `f_ae-comm` (and the reason tree randomness cannot live in the
//!    trusted setup; see §1.2's "trivialized settings" remark).
//!
//! **Fidelity note** (DESIGN.md §2, substitution 5): full KSSV runs in the
//! full-information model with averaging samplers and survives *adversarial*
//! group placement. This election is the standard simplified tournament:
//! under the benchmarked random-corruption model, honest-majority groups
//! keep every seed unpredictable-to-the-adversary and representative sets
//! near-proportional (validated by the tests below); the per-party cost is
//! `polylog(n)` as in KSSV \[48\].
//!
//! Round accounting caveat: groups at the same tournament level run in
//! parallel in the real protocol but sequentially through the simulator's
//! phase runner, so the network's `rounds` counter upper-bounds the true
//! (per-level-parallel) round count by a `#groups` factor. Byte and
//! message accounting are unaffected.

use crate::vss_coin::toss_coin_vss_driven;
use pba_aetree::params::TreeParams;
use pba_aetree::tree::Tree;
use pba_crypto::prg::Prg;
use pba_crypto::sha256::{Digest, Sha256};
use pba_net::runner::{Adversary, PhaseOutcome, RoundDriver};
use pba_net::{Network, PartyId};
use std::collections::BTreeSet;

/// Outcome of the interactive establishment.
#[derive(Clone, Debug)]
pub struct Election {
    /// The elected master seed.
    pub master_seed: Digest,
    /// The established tree.
    pub tree: Tree,
    /// Election rounds (tournament levels) executed.
    pub levels: usize,
}

/// Group size for the tournament (the paper's `polylog`; we reuse the
/// tree's committee size).
fn group_size(params: &TreeParams) -> usize {
    params.committee_size.max(4)
}

/// Partitions `population` into groups of at least `g` members (the last
/// group absorbs the remainder).
fn partition(population: &[PartyId], g: usize) -> Vec<Vec<PartyId>> {
    if population.len() <= 2 * g {
        return vec![population.to_vec()];
    }
    let mut groups: Vec<Vec<PartyId>> = population.chunks(g).map(|c| c.to_vec()).collect();
    if let Some(last) = groups.last() {
        if last.len() < g && groups.len() >= 2 {
            let tail = groups.pop().expect("nonempty");
            groups.last_mut().expect("nonempty").extend(tail);
        }
    }
    groups
}

/// Runs the tournament election over `net` and derives the tree.
///
/// The adversary participates through the committee-level coin tosses
/// (its corrupted members can misbehave there); representatives are then
/// determined by the group seeds.
pub fn establish_interactive(
    net: &mut Network,
    params: &TreeParams,
    adversary: &mut dyn Adversary,
    prg: &mut Prg,
) -> Election {
    match try_establish_interactive(net, params, adversary, prg) {
        Ok(election) => election,
        Err(outcome) => panic!(
            "interactive establishment failed after {} rounds",
            outcome.rounds
        ),
    }
}

/// Fallible [`establish_interactive`]: a group toss that cannot converge
/// — a dead transport, a phase budget blown by faults — surfaces as `Err`
/// with the failing phase's [`PhaseOutcome`] instead of a panic, so the
/// protocol layer can attribute it (e.g. to a recorded transport error).
///
/// # Errors
///
/// The [`PhaseOutcome`] of the first group toss that left a member
/// without a phase-king output.
pub fn try_establish_interactive(
    net: &mut Network,
    params: &TreeParams,
    adversary: &mut dyn Adversary,
    prg: &mut Prg,
) -> Result<Election, PhaseOutcome> {
    let corrupt: BTreeSet<PartyId> = adversary.corrupted().clone();
    let mut population: Vec<PartyId> = (0..params.n as u64).map(PartyId).collect();
    let g = group_size(params);
    let mut levels = 0usize;

    loop {
        levels += 1;
        let groups = partition(&population, g);
        let mut next_population: Vec<PartyId> = Vec::new();
        let mut level_acc = Sha256::new();
        level_acc.update(b"kssv-level");
        level_acc.update(&(levels as u64).to_le_bytes());

        for (gi, group) in groups.iter().enumerate() {
            // Fully corrupt groups cannot toss: their representatives are
            // adversarial regardless; elect the first half deterministically.
            let honest_in_group = group.iter().filter(|p| !corrupt.contains(p)).count();
            let seed = if honest_in_group == 0 {
                Sha256::digest(b"fully-corrupt-group")
            } else {
                let seeds = toss_coin_vss_driven(
                    net,
                    group,
                    adversary,
                    &mut prg.child("kssv-group", (levels * 1_000_003 + gi) as u64),
                    RoundDriver::Lockstep,
                    0,
                    1,
                )?;
                *seeds.values().next().expect("honest member decided")
            };
            level_acc.update(seed.as_bytes());

            if groups.len() == 1 {
                // Final group: its seed is the master seed.
                let master_seed = level_acc.finalize();
                let mut tree_seed = Vec::with_capacity(40);
                tree_seed.extend_from_slice(b"kssv-tree");
                tree_seed.extend_from_slice(master_seed.as_bytes());
                let tree = Tree::build(params, &tree_seed);
                return Ok(Election {
                    master_seed,
                    tree,
                    levels,
                });
            }

            // Elect half the group as representatives, by the group seed.
            let mut elect_prg = Prg::from_digest(&seed);
            let k = (group.len() / 2).max(1);
            let mut chosen: Vec<usize> = elect_prg
                .sample_distinct(group.len() as u64, k)
                .into_iter()
                .map(|v| v as usize)
                .collect();
            chosen.sort_unstable();
            next_population.extend(chosen.into_iter().map(|i| group[i]));
        }
        population = next_population;
        assert!(!population.is_empty(), "election population vanished");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pba_aetree::analysis::TreeAnalysis;
    use pba_net::corruption::CorruptionPlan;
    use pba_net::SilentAdversary;

    fn run(n: usize, t: usize, seed: &[u8]) -> (Election, Network, BTreeSet<PartyId>) {
        let params = TreeParams::scaled(n, 2);
        let mut prg = Prg::from_seed_label(seed, "kssv-test");
        let corrupt = CorruptionPlan::Random { t }.materialize(n, &mut prg);
        let mut adversary = SilentAdversary::new(corrupt.clone());
        let mut net = Network::new(n);
        let election = establish_interactive(&mut net, &params, &mut adversary, &mut prg);
        (election, net, corrupt)
    }

    #[test]
    fn election_terminates_and_builds_valid_tree() {
        let (election, _, _) = run(256, 0, b"k1");
        assert!(election.levels >= 2);
        assert_eq!(election.tree.params().n, 256);
        let analysis = TreeAnalysis::analyze(&election.tree, &BTreeSet::new());
        assert!(analysis.root_good());
    }

    #[test]
    fn tree_guarantees_hold_under_random_corruption() {
        let (election, _, corrupt) = run(384, 38, b"k2");
        let analysis = TreeAnalysis::analyze(&election.tree, &corrupt);
        assert!(analysis.root_good(), "supreme committee corrupted");
        assert!(analysis.good_leaf_fraction() > 0.7);
    }

    #[test]
    fn per_party_cost_is_polylog_shaped() {
        // The per-party cost is dominated by the O(g^2)-bytes group
        // election a party attends (plus later levels for representatives):
        // it must stay essentially flat as n doubles, far from Θ(n) growth.
        let (_, net_small, _) = run(128, 12, b"k3a");
        let (_, net_large, _) = run(256, 25, b"k3b");
        let max_small = net_small.report().max_bytes_per_party.max(1);
        let max_large = net_large.report().max_bytes_per_party;
        assert!(
            max_large < 2 * max_small,
            "per-party cost doubled with n: {max_small} -> {max_large}"
        );
    }

    #[test]
    fn master_seed_depends_on_corruption_free_randomness() {
        let (e1, _, _) = run(128, 0, b"kA");
        let (e2, _, _) = run(128, 0, b"kB");
        assert_ne!(e1.master_seed, e2.master_seed);
    }

    #[test]
    fn representative_fraction_stays_proportional() {
        // Random corruption must not let corrupt parties dominate the
        // final population (here proxied by the supreme committee).
        let (election, _, corrupt) = run(300, 30, b"k4");
        let committee = election.tree.root_committee();
        let bad = committee.iter().filter(|p| corrupt.contains(p)).count();
        assert!(
            3 * bad < committee.len(),
            "{bad}/{} corrupt in supreme committee",
            committee.len()
        );
    }

    #[test]
    fn partition_shapes() {
        let pop: Vec<PartyId> = (0..100u64).map(PartyId).collect();
        let groups = partition(&pop, 24);
        assert!(groups.iter().all(|g| g.len() >= 24));
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, 100);
        // Small populations collapse to one group.
        assert_eq!(partition(&pop[..30], 24).len(), 1);
    }
}
