//! Committee coin tossing: the `f_ct` functionality of §3.1.
//!
//! The paper instantiates `f_ct` with Chor–Goldwasser–Micali–Awerbuch-style
//! VSS over a broadcast channel. We realize the same interface with a
//! three-round commit–echo–reveal protocol followed by a phase-king
//! agreement pass on the resulting seed:
//!
//! 1. **commit** — every member broadcasts a hash commitment to a random
//!    contribution `r_i`;
//! 2. **echo** — members echo the commitment vector they received; a
//!    commitment is *fixed* if a strict majority echoed the same value
//!    (prevents a corrupt dealer from splitting honest views);
//! 3. **reveal** — members open their commitments; the seed is the XOR of
//!    all contributions that open a fixed commitment;
//! 4. **agree** — the committee runs [`crate::phase_king`] on the candidate
//!    seed, guaranteeing a single output even if reveal-phase equivocation
//!    produced divergent candidates.
//!
//! Divergence from the paper's VSS instantiation (documented in DESIGN.md):
//! a rushing adversary may *withhold* its own reveals after seeing honest
//! contributions, biasing the seed by selecting among at most `2^t` subsets
//! of its own contributions. Every honest contribution always enters the
//! XOR, so the seed remains unpredictable before the protocol; this
//! bounded-influence coin is sufficient for the PRF-dissemination role the
//! seed plays in Fig. 3 (steps 7–8), where any fixed seed unknown at
//! corruption time works.

use crate::phase_king::{rounds_for, PhaseKing};
use pba_crypto::codec::{CodecError, Decode, Encode, Reader};
use pba_crypto::commit::{Commitment, Opening};
use pba_crypto::prg::Prg;
use pba_crypto::sha256::{Digest, Sha256};
use pba_net::runner::{run_phase, Adversary};
use pba_net::wire::{step, tag};
use pba_net::{Ctx, Envelope, Machine, Network, PartyId, WireMsg};
use std::collections::{BTreeMap, HashMap};

/// Messages of the commit–echo–reveal phase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoinMsg {
    /// Round 0: commitment to the contribution.
    Commit(Digest),
    /// Round 1: echo of every received commitment `(member, digest)`.
    Echo(Vec<(PartyId, Digest)>),
    /// Round 2: opening `(contribution, randomness)`.
    Reveal([u8; 32], [u8; 32]),
}

impl Encode for CoinMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            CoinMsg::Commit(d) => {
                buf.push(0);
                d.encode(buf);
            }
            CoinMsg::Echo(v) => {
                buf.push(1);
                v.encode(buf);
            }
            CoinMsg::Reveal(r, o) => {
                buf.push(2);
                r.encode(buf);
                o.encode(buf);
            }
        }
    }
}

impl Decode for CoinMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            0 => Ok(CoinMsg::Commit(Digest::decode(r)?)),
            1 => Ok(CoinMsg::Echo(Vec::<(PartyId, Digest)>::decode(r)?)),
            2 => Ok(CoinMsg::Reveal(
                <[u8; 32]>::decode(r)?,
                <[u8; 32]>::decode(r)?,
            )),
            t => Err(CodecError::InvalidTag(t)),
        }
    }
}

impl WireMsg for CoinMsg {
    const TAG: u8 = tag::COIN;
    const STEP: u8 = step::COMMITTEE_BA;
}

/// The commit–echo–reveal machine for one committee member. Produces a
/// *candidate* seed; agreement is finalized by phase-king (see
/// [`toss_coin`]).
#[derive(Debug)]
pub struct CoinToss {
    committee: Vec<PartyId>,
    me: PartyId,
    contribution: [u8; 32],
    opening: Opening,
    received_commits: BTreeMap<PartyId, Digest>,
    echo_counts: HashMap<(PartyId, Digest), usize>,
    candidate: Option<Digest>,
    done: bool,
}

impl CoinToss {
    /// Creates the machine for `me` with fresh randomness from `prg`.
    ///
    /// # Panics
    ///
    /// Panics if `me` is not in the committee.
    pub fn new(committee: Vec<PartyId>, me: PartyId, prg: &mut Prg) -> Self {
        assert!(committee.contains(&me), "{me} not in committee");
        let mut contribution = [0u8; 32];
        rand::RngCore::fill_bytes(prg, &mut contribution);
        let mut opening = [0u8; 32];
        rand::RngCore::fill_bytes(prg, &mut opening);
        CoinToss {
            committee,
            me,
            contribution,
            opening: Opening(opening),
            received_commits: BTreeMap::new(),
            echo_counts: HashMap::new(),
            candidate: None,
            done: false,
        }
    }

    /// The candidate seed (available after the machine finishes).
    pub fn candidate(&self) -> Option<Digest> {
        self.candidate
    }

    fn broadcast(&self, ctx: &mut Ctx<'_>, msg: &CoinMsg) {
        for &peer in &self.committee {
            if peer != self.me {
                ctx.send_msg(peer, msg);
            }
        }
    }
}

impl Machine for CoinToss {
    fn on_round(&mut self, ctx: &mut Ctx<'_>, inbox: &[Envelope]) {
        if self.done {
            return;
        }
        match ctx.round() {
            0 => {
                let c = Commitment::commit_with(&self.contribution, &self.opening);
                self.received_commits.insert(self.me, c.digest());
                self.broadcast(ctx, &CoinMsg::Commit(c.digest()));
            }
            1 => {
                for env in inbox {
                    if !self.committee.contains(&env.from) {
                        continue;
                    }
                    if let Some(CoinMsg::Commit(d)) = ctx.recv_msg(env) {
                        self.received_commits.entry(env.from).or_insert(d);
                    }
                }
                let vector: Vec<(PartyId, Digest)> = self
                    .received_commits
                    .iter()
                    .map(|(&p, &d)| (p, d))
                    .collect();
                for (p, d) in &vector {
                    *self.echo_counts.entry((*p, *d)).or_default() += 1;
                }
                self.broadcast(ctx, &CoinMsg::Echo(vector));
            }
            2 => {
                let mut echoed: std::collections::HashSet<PartyId> = Default::default();
                for env in inbox {
                    if !self.committee.contains(&env.from) || !echoed.insert(env.from) {
                        continue;
                    }
                    if let Some(CoinMsg::Echo(vector)) = ctx.recv_msg(env) {
                        for (p, d) in vector {
                            *self.echo_counts.entry((p, d)).or_default() += 1;
                        }
                    }
                }
                self.broadcast(ctx, &CoinMsg::Reveal(self.contribution, self.opening.0));
            }
            _ => {
                // Fixed commitments: echoed by a strict majority.
                let quorum = self.committee.len() / 2 + 1;
                let fixed: BTreeMap<PartyId, Digest> = self
                    .echo_counts
                    .iter()
                    .filter(|(_, &c)| c >= quorum)
                    .map(|(&(p, d), _)| (p, d))
                    .collect();
                // Open reveals against fixed commitments.
                let mut seed = Sha256::digest(b"pba-coin-base");
                let mut opened: std::collections::HashSet<PartyId> = Default::default();
                // Our own contribution opens by construction.
                if let Some(&d) = fixed.get(&self.me) {
                    if Commitment(d).verify(&self.contribution, &self.opening) {
                        seed = seed.xor(&Sha256::digest(&self.contribution));
                        opened.insert(self.me);
                    }
                }
                for env in inbox {
                    if !self.committee.contains(&env.from) || opened.contains(&env.from) {
                        continue;
                    }
                    if let Some(CoinMsg::Reveal(r, o)) = ctx.recv_msg(env) {
                        if let Some(&d) = fixed.get(&env.from) {
                            if Commitment(d).verify(&r, &Opening(o)) {
                                seed = seed.xor(&Sha256::digest(&r));
                                opened.insert(env.from);
                            }
                        }
                    }
                }
                self.candidate = Some(seed);
                self.done = true;
            }
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

/// Runs the full `f_ct` realization for a committee over `net`:
/// commit–echo–reveal, then phase-king on the candidate seed. Returns the
/// seed agreed by the honest members.
///
/// # Panics
///
/// Panics if no honest member decided (cannot happen below the fault
/// bound).
pub fn toss_coin(
    net: &mut Network,
    committee: &[PartyId],
    adversary: &mut dyn Adversary,
    prg: &mut Prg,
) -> BTreeMap<PartyId, Digest> {
    // Phase 1: commit–echo–reveal.
    let mut machines: BTreeMap<PartyId, CoinToss> = BTreeMap::new();
    for &id in committee {
        if !adversary.corrupted().contains(&id) {
            let mut member_prg = prg.child("coin-member", id.0);
            machines.insert(id, CoinToss::new(committee.to_vec(), id, &mut member_prg));
        }
    }
    {
        let mut erased: BTreeMap<PartyId, Box<dyn Machine + Send + '_>> = machines
            .iter_mut()
            .map(|(&id, m)| (id, Box::new(m) as Box<dyn Machine + Send + '_>))
            .collect();
        run_phase(net, &mut erased, adversary, 8);
    }

    // Phase 2: agree on the candidate via phase-king over digests.
    let mut kings: BTreeMap<PartyId, PhaseKing<Digest>> = machines
        .iter()
        .map(|(&id, m)| {
            let candidate = m.candidate().unwrap_or(Digest::ZERO);
            (id, PhaseKing::new(committee.to_vec(), id, candidate))
        })
        .collect();
    {
        let mut erased: BTreeMap<PartyId, Box<dyn Machine + Send + '_>> = kings
            .iter_mut()
            .map(|(&id, m)| (id, Box::new(m) as Box<dyn Machine + Send + '_>))
            .collect();
        run_phase(net, &mut erased, adversary, rounds_for(committee.len()) + 6);
    }

    kings
        .into_iter()
        .map(|(id, m)| {
            let seed = *m.output().expect("phase-king terminated");
            (id, seed)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pba_net::SilentAdversary;
    use std::collections::BTreeSet;

    fn committee(c: usize) -> Vec<PartyId> {
        (0..c).map(PartyId::from).collect()
    }

    #[test]
    fn all_honest_agree_on_seed() {
        let c = committee(9);
        let mut net = Network::new(9);
        let mut adv = SilentAdversary::default();
        let mut prg = Prg::from_seed_bytes(b"coin1");
        let seeds = toss_coin(&mut net, &c, &mut adv, &mut prg);
        let distinct: BTreeSet<Digest> = seeds.values().copied().collect();
        assert_eq!(distinct.len(), 1);
        assert_ne!(*distinct.iter().next().unwrap(), Digest::ZERO);
    }

    #[test]
    fn different_runs_different_seeds() {
        let c = committee(7);
        let mut adv = SilentAdversary::default();
        let mut net1 = Network::new(7);
        let mut prg1 = Prg::from_seed_bytes(b"runA");
        let s1 = toss_coin(&mut net1, &c, &mut adv, &mut prg1);
        let mut net2 = Network::new(7);
        let mut prg2 = Prg::from_seed_bytes(b"runB");
        let s2 = toss_coin(&mut net2, &c, &mut adv, &mut prg2);
        assert_ne!(s1.values().next(), s2.values().next());
    }

    #[test]
    fn silent_minority_does_not_block() {
        let c = committee(10);
        let corrupt: BTreeSet<PartyId> = [PartyId(8), PartyId(9)].into();
        let mut adv = SilentAdversary::new(corrupt.clone());
        let mut net = Network::new(10);
        let mut prg = Prg::from_seed_bytes(b"coin2");
        let seeds = toss_coin(&mut net, &c, &mut adv, &mut prg);
        let distinct: BTreeSet<Digest> = seeds.values().copied().collect();
        assert_eq!(distinct.len(), 1);
        assert_eq!(seeds.len(), 8);
    }

    /// Adversary that reveals a value not matching its commitment.
    struct FalseRevealer {
        corrupted: BTreeSet<PartyId>,
        committee: Vec<PartyId>,
    }

    impl Adversary for FalseRevealer {
        fn corrupted(&self) -> &BTreeSet<PartyId> {
            &self.corrupted
        }
        fn on_round(
            &mut self,
            round: u64,
            _rushed: &BTreeMap<PartyId, Vec<Envelope>>,
            sender: &mut pba_net::AdvSender<'_>,
        ) {
            for &bad in &self.corrupted {
                for &peer in &self.committee {
                    if self.corrupted.contains(&peer) {
                        continue;
                    }
                    match round {
                        0 => sender.send_msg(bad, peer, &CoinMsg::Commit(Digest::ZERO)),
                        2 => sender.send_msg(bad, peer, &CoinMsg::Reveal([9u8; 32], [7u8; 32])),
                        _ => {}
                    }
                }
            }
        }
    }

    #[test]
    fn invalid_reveals_excluded_consistently() {
        let c = committee(10);
        let corrupt: BTreeSet<PartyId> = [PartyId(0), PartyId(1)].into();
        let mut adv = FalseRevealer {
            corrupted: corrupt.clone(),
            committee: c.clone(),
        };
        let mut net = Network::new(10);
        let mut prg = Prg::from_seed_bytes(b"coin3");
        let seeds = toss_coin(&mut net, &c, &mut adv, &mut prg);
        let distinct: BTreeSet<Digest> = seeds.values().copied().collect();
        assert_eq!(distinct.len(), 1, "honest members disagree on seed");
    }

    #[test]
    fn coin_message_codec_roundtrip() {
        for msg in [
            CoinMsg::Commit(Sha256::digest(b"c")),
            CoinMsg::Echo(vec![(PartyId(1), Sha256::digest(b"d"))]),
            CoinMsg::Reveal([1u8; 32], [2u8; 32]),
        ] {
            let bytes = pba_crypto::codec::encode_to_vec(&msg);
            let back: CoinMsg = pba_crypto::codec::decode_from_slice(&bytes).unwrap();
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn communication_is_committee_local() {
        let c = committee(8);
        let mut net = Network::new(100); // 92 outsiders
        let mut adv = SilentAdversary::default();
        let mut prg = Prg::from_seed_bytes(b"coin4");
        toss_coin(&mut net, &c, &mut adv, &mut prg);
        for outsider in 8..100 {
            let m = net.metrics().party(PartyId(outsider));
            assert_eq!(m.bytes_sent + m.bytes_received, 0);
        }
    }
}
