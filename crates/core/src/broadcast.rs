//! The broadcast corollary (Corollary 1.2(1)): `ℓ` broadcast executions —
//! potentially with different senders — over **one** established session
//! cost `ℓ · polylog(n) · poly(κ)` bits per party.
//!
//! A broadcast execution reuses the session's tree and PKI: the sender
//! transfers its value to the supreme committee, the committee runs `f_ba`
//! on the received values (fixing equivocation by a corrupt sender), and
//! the certified dissemination of Fig. 3 steps 3–8 delivers the value to
//! everyone. The expensive establishment (KSSV tree + key setup) is paid
//! once; each additional broadcast costs only the certified round.
//!
//! One-time-signature caveat: SRDS security is defined for one-time
//! signatures. Schemes whose keys carry multiple one-time slots (the
//! MSS-based [`pba_srds::snark::SnarkSrds`] and
//! [`pba_srds::multisig::MultisigSrds`]) consume a fresh slot per execution
//! via [`pba_srds::traits::Srds::sign_epoch`]; configure `mss_height ≥
//! ⌈log₂ ℓ⌉`. The Lamport-based OWF scheme supports a single certified
//! execution per key generation.

use crate::protocol::{BaConfig, RoundOutcome, Session};
use pba_crypto::codec::{CodecError, Decode, Encode, Reader};
use pba_net::wire::{self, step, tag};
use pba_net::{PartyId, Report, WireMsg};
use pba_srds::traits::Srds;
use std::collections::BTreeMap;

/// The sender's input transfer to a supreme-committee member: one
/// broadcast execution's value, as a typed wire message so the transfer
/// is charged at its real encoded size and attributed to its own tag.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BroadcastInput {
    /// The value being broadcast.
    pub value: u8,
}

impl Encode for BroadcastInput {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.value.encode(buf);
    }
}

impl Decode for BroadcastInput {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(BroadcastInput {
            value: u8::decode(r)?,
        })
    }
}

impl WireMsg for BroadcastInput {
    const TAG: u8 = tag::BCAST_INPUT;
    const STEP: u8 = step::NONE;
}

/// Outcome of a multi-execution broadcast run.
#[derive(Clone, Debug)]
pub struct BroadcastOutcome {
    /// Per-execution results (sender value, per-party outputs, certificate).
    pub executions: Vec<RoundOutcome>,
    /// Whether every execution delivered the sender's value to all honest
    /// parties (with an honest sender).
    pub all_delivered: bool,
    /// Honest communication after establishment only (the one-time cost).
    pub setup_report: Report,
    /// Honest communication after all executions.
    pub final_report: Report,
}

impl BroadcastOutcome {
    /// Amortized per-execution increase of the max-per-party byte count.
    pub fn amortized_max_bytes_per_party(&self) -> f64 {
        let delta = self
            .final_report
            .max_bytes_per_party
            .saturating_sub(self.setup_report.max_bytes_per_party);
        delta as f64 / self.executions.len().max(1) as f64
    }
}

/// Runs `values.len()` broadcast executions with `sender` over one session.
///
/// # Panics
///
/// Panics if `values` is empty or `sender` is out of range.
pub fn run_broadcasts<S>(
    scheme: &S,
    config: &BaConfig,
    sender: PartyId,
    values: &[u8],
) -> BroadcastOutcome
where
    S: Srds,
    S::Signature: Encode + Decode,
{
    assert!(!values.is_empty(), "need at least one broadcast");
    assert!(sender.index() < config.n, "sender out of range");
    let mut session = Session::establish(scheme, config);
    let setup_report = session.report();
    let supreme = session.supreme_committee();
    let sender_honest = !session.corrupt().contains(&sender);

    let mut executions = Vec::with_capacity(values.len());
    let mut all_delivered = true;
    for &value in values {
        // The sender transfers its value to every supreme-committee member,
        // charged as real traffic at the typed message's encoded size.
        let input_bytes = wire::encoded_msg_len(&BroadcastInput { value });
        let mut committee_inputs: BTreeMap<PartyId, u8> = BTreeMap::new();
        for &member in &supreme {
            if sender_honest {
                session.net.metrics_mut().record_send_tagged(
                    sender,
                    member,
                    input_bytes,
                    tag::BCAST_INPUT,
                );
                session.net.metrics_mut().record_receive_tagged(
                    member,
                    sender,
                    input_bytes,
                    tag::BCAST_INPUT,
                );
                committee_inputs.insert(member, value);
            } else {
                // A corrupt sender equivocates: alternate bits per member.
                committee_inputs.insert(member, (member.0 % 2) as u8);
            }
        }
        session.net.bump_round();

        let round = session.certified_round(&committee_inputs);
        if sender_honest {
            for &p in session.honest() {
                if round.outputs[p.index()] != Some(value) {
                    all_delivered = false;
                }
            }
        } else {
            // Corrupt sender: agreement still required, delivery of *some*
            // common value.
            let mut honest_values = session.honest().iter().map(|p| round.outputs[p.index()]);
            let first = honest_values.next().flatten();
            if first.is_none() || honest_values.any(|v| v != first) {
                all_delivered = false;
            }
        }
        executions.push(round);
    }

    let final_report = session.report();
    BroadcastOutcome {
        executions,
        all_delivered,
        setup_report,
        final_report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::AdversaryProfile;
    use pba_net::corruption::CorruptionPlan;
    use pba_srds::snark::{SnarkSrds, SnarkSrdsConfig};

    fn scheme_for(executions: usize) -> SnarkSrds {
        let height = (usize::BITS - executions.saturating_sub(1).leading_zeros()) as usize;
        SnarkSrds::new(SnarkSrdsConfig {
            mss_bits: 32,
            mss_height: height.max(1),
        })
    }

    #[test]
    fn honest_sender_delivers_all_executions() {
        let scheme = scheme_for(3);
        let config = BaConfig::honest(64, b"bc-1");
        let out = run_broadcasts(&scheme, &config, PartyId(5), &[1, 0, 1]);
        assert!(out.all_delivered);
        assert_eq!(out.executions.len(), 3);
        for (i, exec) in out.executions.iter().enumerate() {
            assert_eq!(exec.y, [1, 0, 1][i]);
        }
    }

    #[test]
    fn amortization_kicks_in() {
        let scheme = scheme_for(4);
        let config = BaConfig::honest(64, b"bc-2");
        let one = run_broadcasts(&scheme, &config, PartyId(0), &[1]);
        let four = run_broadcasts(&scheme, &config, PartyId(0), &[1, 1, 1, 1]);
        // Four executions cost strictly less than 4x one full run (shared
        // establishment) and the amortized per-execution cost is similar.
        assert!(four.final_report.max_bytes_per_party < 4 * one.final_report.max_bytes_per_party);
        let a1 = one.amortized_max_bytes_per_party();
        let a4 = four.amortized_max_bytes_per_party();
        assert!(a4 < 2.0 * a1, "amortized cost grew: {a1} -> {a4}");
    }

    #[test]
    fn corrupt_sender_still_agrees() {
        let scheme = scheme_for(1);
        let mut config = BaConfig::honest(64, b"bc-3");
        config.corruption = CorruptionPlan::Explicit([PartyId(7)].into());
        config.profile = AdversaryProfile::Byzantine;
        let out = run_broadcasts(&scheme, &config, PartyId(7), &[1]);
        // Agreement on some value despite the equivocating sender.
        assert!(out.all_delivered, "honest parties disagreed");
    }
}
