//! Robust committee coin tossing via verifiable-secret-sharing-style
//! deal/echo/reconstruct — the Chor–Goldwasser–Micali–Awerbuch
//! instantiation of `f_ct` that §3.1 cites, strengthened over the
//! commit–reveal variant in [`crate::coin`] by **error-corrected
//! reconstruction**:
//!
//! 1. **deal** — every member Shamir-shares a random field element with
//!    threshold `t = ⌊(c−1)/3⌋` over private channels;
//! 2. **echo** — every member broadcasts all shares it received;
//! 3. **reconstruct** — each dealer's polynomial is decoded from the `c`
//!    echoed shares with Berlekamp–Welch, correcting up to `t` Byzantine
//!    echoes (`c ≥ 3t + 1`); undecodable dealers are excluded;
//! 4. **agree** — phase-king on the candidate seed handles residual
//!    divergence from equivocating echoes of inconsistent corrupt dealers.
//!
//! Unlike commit–reveal, the adversary **cannot withhold**: once dealt,
//! its contributions reconstruct without its cooperation, and rushing in
//! the deal round only shows it `t` shares of each honest dealer — below
//! the threshold, revealing nothing. The coin is therefore unbiased, not
//! merely bounded-influence.

use crate::phase_king::{rounds_for, PhaseKing};
use pba_crypto::codec::{CodecError, Decode, Encode, Reader};
use pba_crypto::field::Fp;
use pba_crypto::prg::Prg;
use pba_crypto::reed_solomon;
use pba_crypto::sha256::{Digest, Sha256};
use pba_crypto::shamir;
use pba_net::runner::{run_phase_driven, Adversary, PhaseOutcome, RoundDriver};
use pba_net::wire::{step, tag};
use pba_net::{Ctx, Envelope, Machine, Network, PartyId, WireMsg};
use std::collections::BTreeMap;

/// Messages of the deal/echo phases.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VssCoinMsg {
    /// Round 0: the dealer's share for this recipient.
    Deal(Fp),
    /// Round 1: echo of every received share, `(dealer position, share)`.
    Echo(Vec<(u64, Fp)>),
}

impl Encode for VssCoinMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            VssCoinMsg::Deal(v) => {
                buf.push(0);
                v.encode(buf);
            }
            VssCoinMsg::Echo(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
}

impl Decode for VssCoinMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            0 => Ok(VssCoinMsg::Deal(Fp::decode(r)?)),
            1 => Ok(VssCoinMsg::Echo(Vec::<(u64, Fp)>::decode(r)?)),
            t => Err(CodecError::InvalidTag(t)),
        }
    }
}

impl WireMsg for VssCoinMsg {
    const TAG: u8 = tag::VSS_COIN;
    const STEP: u8 = step::COMMITTEE_BA;
}

/// The deal/echo/reconstruct machine for one committee member.
#[derive(Debug)]
pub struct VssCoin {
    committee: Vec<PartyId>,
    me: PartyId,
    my_pos: usize,
    t: usize,
    my_poly_shares: Vec<Fp>, // shares of this member's own secret, per seat
    received: BTreeMap<usize, Fp>, // dealer position -> my share
    /// `echoes[echoer position][dealer position]` = echoed share.
    echoes: Vec<BTreeMap<usize, Fp>>,
    candidate: Option<Digest>,
    done: bool,
}

impl VssCoin {
    /// Creates the machine for `me` with fresh randomness from `prg`.
    ///
    /// # Panics
    ///
    /// Panics if `me` is not in the committee.
    pub fn new(committee: Vec<PartyId>, me: PartyId, prg: &mut Prg) -> Self {
        let my_pos = committee
            .iter()
            .position(|&p| p == me)
            .expect("member not in committee");
        let c = committee.len();
        let t = c.saturating_sub(1) / 3;
        let secret = Fp::random(prg);
        let my_poly_shares: Vec<Fp> = shamir::share(secret, t, c, prg)
            .into_iter()
            .map(|s| s.value)
            .collect();
        let _ = secret; // fully encoded in the shares
        VssCoin {
            echoes: vec![BTreeMap::new(); c],
            committee,
            me,
            my_pos,
            t,
            my_poly_shares,
            received: BTreeMap::new(),
            candidate: None,
            done: false,
        }
    }

    /// The candidate seed, once reconstructed.
    pub fn candidate(&self) -> Option<Digest> {
        self.candidate
    }

    fn position_of(&self, p: PartyId) -> Option<usize> {
        self.committee.iter().position(|&m| m == p)
    }
}

impl Machine for VssCoin {
    fn on_round(&mut self, ctx: &mut Ctx<'_>, inbox: &[Envelope]) {
        if self.done {
            return;
        }
        let c = self.committee.len();
        match ctx.round() {
            0 => {
                // Deal: private share to every member.
                self.received
                    .insert(self.my_pos, self.my_poly_shares[self.my_pos]);
                for (pos, &peer) in self.committee.clone().iter().enumerate() {
                    if peer != self.me {
                        ctx.send_msg(peer, &VssCoinMsg::Deal(self.my_poly_shares[pos]));
                    }
                }
            }
            1 => {
                // Collect dealt shares; echo everything.
                for env in inbox {
                    let Some(pos) = self.position_of(env.from) else {
                        continue;
                    };
                    if self.received.contains_key(&pos) {
                        continue;
                    }
                    if let Some(VssCoinMsg::Deal(v)) = ctx.recv_msg(env) {
                        self.received.insert(pos, v);
                    }
                }
                let vector: Vec<(u64, Fp)> =
                    self.received.iter().map(|(&d, &v)| (d as u64, v)).collect();
                self.echoes[self.my_pos] = self.received.clone();
                for &peer in &self.committee.clone() {
                    if peer != self.me {
                        ctx.send_msg(peer, &VssCoinMsg::Echo(vector.clone()));
                    }
                }
            }
            _ => {
                // Collect echoes; reconstruct every dealer with BW decoding.
                for env in inbox {
                    let Some(pos) = self.position_of(env.from) else {
                        continue;
                    };
                    if !self.echoes[pos].is_empty() {
                        continue;
                    }
                    if let Some(VssCoinMsg::Echo(vector)) = ctx.recv_msg(env) {
                        for (d, v) in vector {
                            self.echoes[pos].insert(d as usize, v);
                        }
                    }
                }
                let mut seed_acc = Sha256::new();
                seed_acc.update(b"pba-vss-coin");
                let mut included = 0u64;
                for dealer in 0..c {
                    // Points: echoer position -> echoed share of this dealer.
                    let points: Vec<(Fp, Fp)> = (0..c)
                        .filter_map(|echoer| {
                            self.echoes[echoer]
                                .get(&dealer)
                                .map(|&v| (Fp::new(echoer as u64 + 1), v))
                        })
                        .collect();
                    let k = self.t + 1;
                    if points.len() < k {
                        continue;
                    }
                    let budget = ((points.len() - k) / 2).min(self.t);
                    if let Ok(poly) = reed_solomon::decode(&points, k, budget) {
                        seed_acc.update(&(dealer as u64).to_le_bytes());
                        seed_acc.update(&poly.eval(Fp::ZERO).value().to_le_bytes());
                        included += 1;
                    }
                }
                seed_acc.update(&included.to_le_bytes());
                self.candidate = Some(seed_acc.finalize());
                self.done = true;
            }
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

/// Runs the full robust `f_ct` realization: deal/echo/reconstruct, then
/// phase-king on the candidate seed. Returns each honest member's seed.
///
/// # Panics
///
/// Panics if phase-king fails to terminate (impossible below the fault
/// bound).
pub fn toss_coin_vss(
    net: &mut Network,
    committee: &[PartyId],
    adversary: &mut dyn Adversary,
    prg: &mut Prg,
) -> BTreeMap<PartyId, Digest> {
    toss_coin_vss_threaded(net, committee, adversary, prg, 1)
}

/// [`toss_coin_vss`] with the honest round engine spread over `threads`
/// scoped workers. Any thread count yields a bit-identical run — see
/// [`pba_net::run_phase_threaded`].
///
/// # Panics
///
/// Panics if phase-king fails to terminate (impossible below the fault
/// bound).
pub fn toss_coin_vss_threaded(
    net: &mut Network,
    committee: &[PartyId],
    adversary: &mut dyn Adversary,
    prg: &mut Prg,
    threads: usize,
) -> BTreeMap<PartyId, Digest> {
    toss_coin_vss_driven(
        net,
        committee,
        adversary,
        prg,
        RoundDriver::Lockstep,
        0,
        threads,
    )
    .expect("phase-king terminated")
}

/// [`toss_coin_vss_threaded`] under an explicit [`RoundDriver`], fallible:
/// timing faults (churned members offline past the phase budget, delays
/// beyond the driver window) can leave a member without a phase-king
/// output, which surfaces as `Err` with the failing phase's
/// [`PhaseOutcome`] instead of a panic. `slack` extends both phase budgets
/// by that many machine rounds so heal/rejoin events scheduled in tick
/// time can land inside the phase.
///
/// A member that produced no candidate (e.g. it was offline through
/// reconstruction) enters phase-king with [`Digest::ZERO`], exactly like a
/// member whose dealer set was emptied by faults — the king agreement then
/// decides whether the committee still converges.
pub fn toss_coin_vss_driven(
    net: &mut Network,
    committee: &[PartyId],
    adversary: &mut dyn Adversary,
    prg: &mut Prg,
    driver: RoundDriver,
    slack: u64,
    threads: usize,
) -> Result<BTreeMap<PartyId, Digest>, PhaseOutcome> {
    let mut machines: BTreeMap<PartyId, VssCoin> = BTreeMap::new();
    for &id in committee {
        if !adversary.corrupted().contains(&id) {
            let mut member_prg = prg.child("vss-coin-member", id.0);
            machines.insert(id, VssCoin::new(committee.to_vec(), id, &mut member_prg));
        }
    }
    {
        let mut erased: BTreeMap<PartyId, Box<dyn Machine + Send + '_>> = machines
            .iter_mut()
            .map(|(&id, m)| (id, Box::new(m) as Box<dyn Machine + Send + '_>))
            .collect();
        // The deal/echo outcome is advisory: a member that missed
        // reconstruction enters agreement with a zero candidate.
        run_phase_driven(net, &mut erased, adversary, 8 + slack, driver, threads);
    }

    let mut kings: BTreeMap<PartyId, PhaseKing<Digest>> = machines
        .iter()
        .map(|(&id, m)| {
            let candidate = m.candidate().unwrap_or(Digest::ZERO);
            (id, PhaseKing::new(committee.to_vec(), id, candidate))
        })
        .collect();
    let outcome = {
        let mut erased: BTreeMap<PartyId, Box<dyn Machine + Send + '_>> = kings
            .iter_mut()
            .map(|(&id, m)| (id, Box::new(m) as Box<dyn Machine + Send + '_>))
            .collect();
        run_phase_driven(
            net,
            &mut erased,
            adversary,
            rounds_for(committee.len()) + 6 + slack,
            driver,
            threads,
        )
    };

    let mut seeds = BTreeMap::new();
    for (id, m) in kings {
        match m.output() {
            Some(seed) => {
                seeds.insert(id, *seed);
            }
            None => return Err(outcome),
        }
    }
    Ok(seeds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pba_net::runner::AdvSender;
    use pba_net::SilentAdversary;
    use std::collections::BTreeSet;

    fn committee(c: usize) -> Vec<PartyId> {
        (0..c).map(PartyId::from).collect()
    }

    #[test]
    fn all_honest_agree() {
        let c = committee(10);
        let mut net = Network::new(10);
        let mut adv = SilentAdversary::default();
        let mut prg = Prg::from_seed_bytes(b"vss1");
        let seeds = toss_coin_vss(&mut net, &c, &mut adv, &mut prg);
        let distinct: BTreeSet<Digest> = seeds.values().copied().collect();
        assert_eq!(distinct.len(), 1);
        assert_ne!(*distinct.iter().next().unwrap(), Digest::ZERO);
    }

    #[test]
    fn silent_third_cannot_block_or_bias_reconstruction() {
        // 10 members, 3 silent corrupt: every honest dealer's secret still
        // reconstructs (the corrupt members' absence just removes points).
        let c = committee(10);
        let corrupt: BTreeSet<PartyId> = [PartyId(7), PartyId(8), PartyId(9)].into();
        let mut adv = SilentAdversary::new(corrupt);
        let mut net = Network::new(10);
        let mut prg = Prg::from_seed_bytes(b"vss2");
        let seeds = toss_coin_vss(&mut net, &c, &mut adv, &mut prg);
        let distinct: BTreeSet<Digest> = seeds.values().copied().collect();
        assert_eq!(distinct.len(), 1);
        assert_eq!(seeds.len(), 7);
    }

    /// Corrupt members echo garbage shares for every dealer.
    struct LyingEchoer {
        corrupted: BTreeSet<PartyId>,
        committee: Vec<PartyId>,
    }

    impl Adversary for LyingEchoer {
        fn corrupted(&self) -> &BTreeSet<PartyId> {
            &self.corrupted
        }
        fn on_round(
            &mut self,
            round: u64,
            _rushed: &BTreeMap<PartyId, Vec<Envelope>>,
            sender: &mut AdvSender<'_>,
        ) {
            if round != 1 {
                return;
            }
            for &bad in &self.corrupted {
                for (j, &peer) in self.committee.iter().enumerate() {
                    if self.corrupted.contains(&peer) {
                        continue;
                    }
                    // Garbage echo: different per recipient (equivocation).
                    let vector: Vec<(u64, Fp)> = (0..self.committee.len() as u64)
                        .map(|d| (d, Fp::new(d * 7919 + j as u64 + 1)))
                        .collect();
                    sender.send_msg(bad, peer, &VssCoinMsg::Echo(vector));
                }
            }
        }
    }

    #[test]
    fn lying_echoes_are_error_corrected() {
        let c = committee(10); // t = 3, c = 3t + 1
        let corrupt: BTreeSet<PartyId> = [PartyId(0), PartyId(1), PartyId(2)].into();
        let mut adv = LyingEchoer {
            corrupted: corrupt.clone(),
            committee: c.clone(),
        };
        let mut net = Network::new(10);
        let mut prg = Prg::from_seed_bytes(b"vss3");
        let seeds = toss_coin_vss(&mut net, &c, &mut adv, &mut prg);
        let distinct: BTreeSet<Digest> = seeds.values().copied().collect();
        assert_eq!(distinct.len(), 1, "lying echoes split the committee");
    }

    #[test]
    fn two_runs_differ() {
        let c = committee(7);
        let mut adv = SilentAdversary::default();
        let mut n1 = Network::new(7);
        let mut p1 = Prg::from_seed_bytes(b"vssA");
        let s1 = toss_coin_vss(&mut n1, &c, &mut adv, &mut p1);
        let mut n2 = Network::new(7);
        let mut p2 = Prg::from_seed_bytes(b"vssB");
        let s2 = toss_coin_vss(&mut n2, &c, &mut adv, &mut p2);
        assert_ne!(s1.values().next(), s2.values().next());
    }

    #[test]
    fn message_codec_roundtrip() {
        for msg in [
            VssCoinMsg::Deal(Fp::new(123)),
            VssCoinMsg::Echo(vec![(0, Fp::new(5)), (3, Fp::new(9))]),
        ] {
            let bytes = pba_crypto::codec::encode_to_vec(&msg);
            let back: VssCoinMsg = pba_crypto::codec::decode_from_slice(&bytes).unwrap();
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn communication_stays_committee_local() {
        let c = committee(7);
        let mut net = Network::new(50);
        let mut adv = SilentAdversary::default();
        let mut prg = Prg::from_seed_bytes(b"vss4");
        toss_coin_vss(&mut net, &c, &mut adv, &mut prg);
        for outsider in 7..50u64 {
            let m = net.metrics().party(PartyId(outsider));
            assert_eq!(m.bytes_sent + m.bytes_received, 0);
        }
    }
}
