//! The balanced Byzantine agreement protocol `π_ba` (Figure 3): boosting
//! almost-everywhere agreement to full agreement with `polylog(n)` bits per
//! party, generic over the SRDS scheme.
//!
//! The protocol runs in the hybrid model of §3.1 and this implementation
//! realizes each functionality as documented in DESIGN.md:
//!
//! | Fig. 3 step | realization |
//! |---|---|
//! | setup | per-virtual-identity SRDS keys (`idmap` = tree slots) |
//! | 1 | `f_ae-comm`: tree built post-corruption + KSSV cost accounting |
//! | 2 | `f_ba` = phase-king among the supreme committee; `f_ct` = commit–echo–reveal + phase-king |
//! | 3 | metered tree dissemination of `(y, s)` |
//! | 4 | every virtual identity signs its received `(y_i, s_i)` and submits to its leaf committee |
//! | 5 | per-node: step-5b exchange (metered), step-5c range filter, `f_aggr-sig` majority aggregation |
//! | 6 | metered tree dissemination of `(y, s, σ_root)` |
//! | 7–8 | PRF-subset spread `F_s(i)` + receiver-side filter and SRDS verification |
//!
//! All communication — real envelopes or metered functionality calls — is
//! charged through [`pba_net::metrics`], which is what the Table 1 harness
//! measures. The execution is factored into a long-lived [`Service`]
//! (establishment happens once: tree, keys, CRS, peer state) and
//! per-agreement [`Instance`]s that borrow it — each instance draws one
//! slot of the establishment's one-time signing budget and the certificate
//! cache stays warm across instances. [`Service::try_run_stream`] runs
//! many instances over one establishment (sequentially or pipelined in the
//! Fast-HotStuff chaining shape), which is what the broadcast corollary
//! and the decisions/sec benchmark build on. `Session` remains as an
//! alias for the service type.

use crate::aggr::{charge_aggr_round, f_aggr_sig_uniform};
use crate::phase_king::{rounds_for, PhaseKing, PkMsg};
use crate::vss_coin::toss_coin_vss_driven;
use pba_aetree::analysis::{adaptive_targets, TreeAnalysis};
use pba_aetree::fae::{charge_establishment, constant_adversary, disseminate, honest_adversary};
use pba_aetree::params::TreeParams;
use pba_aetree::robust::{ascend, dedup_committee, robust_input_fanin, robust_input_fanin_with};
use pba_aetree::tree::Tree;
use pba_crypto::codec::{decode_from_slice, encode_to_vec, CodecError, Decode, Encode, Reader};
use pba_crypto::mss::LeafBudget;
use pba_crypto::prf::SubsetPrf;
use pba_crypto::prg::Prg;
use pba_crypto::sha256::Digest;
use pba_net::corruption::CorruptionPlan;
use pba_net::faults::StrategySpec;
use pba_net::runner::{
    run_phase_driven, run_phase_overlapped, AdvSender, Adversary, PhaseOutcome, RoundDriver,
};
use pba_net::wire::{self, step, tag};
use pba_net::{Envelope, Machine, Network, PartyId, Report, TagBreakdown, Transport, WireMsg};
use pba_srds::cache::CacheStats;
use pba_srds::traits::Srds;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// How the `f_ae-comm` tree is established.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Establishment {
    /// Build the tree from post-corruption randomness and charge every
    /// party the documented polylog cost of the KSSV protocol
    /// ([`pba_aetree::fae::charge_establishment`]). Fast; the default.
    Charged,
    /// Run the interactive tournament election ([`crate::kssv`]) with real
    /// metered messages.
    Interactive,
}

impl Establishment {
    /// Short label for tables and seed derivation.
    pub fn label(&self) -> &'static str {
        match self {
            Establishment::Charged => "charged",
            Establishment::Interactive => "interactive",
        }
    }
}

/// How per-virtual-identity signing keys are instantiated.
///
/// Key *derivation* is a pure function of the session PRG — party `i`'s
/// `j`-th key pair always comes from `prg.child("party-keys", i).child("slot", j)`
/// — so every policy yields bit-identical verification keys, transcripts
/// and outcomes; the policies differ only in *when* (and for Sampled,
/// *whether*) the signing half is materialized in memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KeyPolicy {
    /// Generate and hold all `n × (z + 2)` key pairs at establishment.
    /// Simple, but the MSS signing material dominates memory at large `n`
    /// (the 2^20 blocker named in ROADMAP "Million-party simulation").
    Eager,
    /// Hold no signing keys: re-derive each from the session PRG at the
    /// moment of signing. Verification keys are still derived once at
    /// establishment (the keyboard needs all of them). Bit-identical to
    /// [`KeyPolicy::Eager`] in every observable.
    Lazy,
    /// [`KeyPolicy::Lazy`], plus only parties serving on a *viable* leaf
    /// path (every committee from their leaf to the root keeps its corrupt
    /// members a strict minority) may materialize signing keys; touching
    /// any other party's keys is a structured [`KeyError`]. Signatures
    /// from non-viable leaves can never survive the redundant-path ascent,
    /// so agreement verdicts are unchanged — but per-party *metering* of
    /// doomed signers differs from Eager/Lazy, so this policy is for
    /// capacity sweeps, not for transcript-equivalence tests.
    Sampled,
}

/// Structured error for signing-key material the service cannot provide:
/// a party whose keys the [`KeyPolicy`] declined to instantiate, or an
/// instance the establishment's one-time signing capacity cannot cover.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KeyError {
    /// The Sampled policy left this party's keys unmaterialized.
    NotInstantiated {
        /// The party whose keys were requested.
        party: PartyId,
        /// The per-party key occurrence index requested.
        key_index: usize,
    },
    /// The establishment's one-time signing budget (the MSS leaf
    /// capacity, one epoch slot per agreement instance) is spent.
    BudgetExhausted {
        /// The instance that requested a slot.
        instance: u64,
        /// The establishment's total one-time signing capacity.
        capacity: u64,
    },
}

impl fmt::Display for KeyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyError::NotInstantiated { party, key_index } => write!(
                f,
                "signing key {key_index} of party {party} is not instantiated under the Sampled key policy"
            ),
            KeyError::BudgetExhausted { instance, capacity } => write!(
                f,
                "instance {instance} exceeds the establishment's one-time signing budget of {capacity} epoch slot(s)"
            ),
        }
    }
}

impl std::error::Error for KeyError {}

/// A signing key obtained from [`Session::signing_key`]: borrowed from the
/// eager store, or freshly derived (owned) under a lazy policy.
pub enum KeyHandle<'a, S: Srds> {
    /// Borrowed from the eager key store.
    Borrowed(&'a S::SigningKey),
    /// Re-derived on demand from the session PRG.
    Owned(S::SigningKey),
}

impl<S: Srds> KeyHandle<'_, S> {
    /// The signing key.
    pub fn key(&self) -> &S::SigningKey {
        match self {
            KeyHandle::Borrowed(sk) => sk,
            KeyHandle::Owned(sk) => sk,
        }
    }
}

// Variant names only: `S::SigningKey` is secret material and need not
// (and must not) be `Debug` itself.
impl<S: Srds> std::fmt::Debug for KeyHandle<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KeyHandle::Borrowed(_) => f.write_str("KeyHandle::Borrowed(..)"),
            KeyHandle::Owned(_) => f.write_str("KeyHandle::Owned(..)"),
        }
    }
}

/// Per-party signing-key material, governed by [`KeyPolicy`].
enum KeyStore<S: Srds> {
    /// `keys[party][j]` = the party's `j`-th key pair.
    Eager(Vec<Vec<(S::VerificationKey, S::SigningKey)>>),
    /// No stored signing keys; re-derived from the session PRG on demand.
    /// `instantiable` (the Sampled policy) gates which parties may.
    Lazy { instantiable: Option<Vec<bool>> },
}

/// Which parties the Sampled policy lets materialize signing keys: the
/// members of every leaf committee whose full path to the root keeps
/// corrupt members a strict minority of each (deduplicated) committee.
/// Signatures originating at any other leaf lose every redundant-path
/// vote on the way up ([`pba_aetree::robust`]), so withholding those
/// parties' keys cannot change what reaches the root.
fn sampled_mask(tree: &Tree, corrupt: &BTreeSet<PartyId>) -> Vec<bool> {
    let params = tree.params();
    let mut mask = vec![false; params.n];
    for leaf in 0..params.leaf_count {
        let mut viable = true;
        let (mut level, mut node) = (0usize, leaf);
        loop {
            let committee = dedup_committee(tree.committee(level, node));
            let bad = committee.iter().filter(|p| corrupt.contains(p)).count();
            if 2 * bad >= committee.len() {
                viable = false;
                break;
            }
            if level + 1 >= params.height {
                break;
            }
            node /= params.branching;
            level += 1;
        }
        if viable {
            for &member in tree.committee(0, leaf) {
                mask[member.index()] = true;
            }
        }
    }
    mask
}

/// How corrupted parties behave during the protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdversaryProfile {
    /// Corrupted parties are silent (crash faults).
    Passive,
    /// Corrupted parties equivocate in committee protocols, push garbage
    /// during dissemination, sign divergent messages, and withhold
    /// aggregates at bad nodes.
    Byzantine,
}

/// Configuration of one `π_ba` execution.
#[derive(Clone, Debug)]
pub struct BaConfig {
    /// Number of protocol parties.
    pub n: usize,
    /// Leaf memberships per party (Def. 3.4's `z`).
    pub z: usize,
    /// How the corrupt set is chosen.
    pub corruption: CorruptionPlan,
    /// Behaviour of corrupted parties.
    pub profile: AdversaryProfile,
    /// Execution seed (drives setup, tree, and all honest randomness).
    pub seed: Vec<u8>,
    /// How the communication tree is established.
    pub establishment: Establishment,
    /// Optional fault-injection strategy for the committee sub-protocols.
    /// When set, it replaces the [`AdversaryProfile`]-derived committee
    /// adversary (the profile still governs dissemination/aggregation
    /// misbehaviour). Built deterministically from the execution seed.
    pub chaos: Option<StrategySpec>,
    /// Worker threads for the committee sub-protocol round engine
    /// (`0` and `1` both mean sequential). Larger values run honest
    /// machines on a phase-persistent work-stealing pool with
    /// cost-balanced chunks; any value — including more threads than
    /// parties — yields a bit-identical execution (see
    /// [`pba_net::run_phase_threaded`]), so this is purely a wall-clock
    /// knob.
    pub threads: usize,
    /// When signing-key material is instantiated (see [`KeyPolicy`]).
    pub key_policy: KeyPolicy,
    /// Attach the dense metrics reference as a differential shadow behind
    /// the sparse table ([`pba_net::Network::enable_metrics_shadow`]).
    /// Test-only knob: doubles metering cost and restores the dense
    /// table's O(n) memory.
    pub dense_shadow: bool,
}

impl BaConfig {
    /// An honest-run configuration.
    pub fn honest(n: usize, seed: &[u8]) -> Self {
        BaConfig {
            n,
            z: 2,
            corruption: CorruptionPlan::None,
            profile: AdversaryProfile::Passive,
            seed: seed.to_vec(),
            establishment: Establishment::Charged,
            chaos: None,
            threads: 1,
            key_policy: KeyPolicy::Eager,
            dense_shadow: false,
        }
    }

    /// A run with `t` random Byzantine corruptions.
    pub fn byzantine(n: usize, t: usize, seed: &[u8]) -> Self {
        BaConfig {
            n,
            z: 2,
            corruption: CorruptionPlan::Random { t },
            profile: AdversaryProfile::Byzantine,
            seed: seed.to_vec(),
            establishment: Establishment::Charged,
            chaos: None,
            threads: 1,
            key_policy: KeyPolicy::Eager,
            dense_shadow: false,
        }
    }

    /// Returns the configuration with the round-engine thread count set.
    /// `0` is accepted and runs the sequential engine, as does `1`; the
    /// runner caps the pool at the machine count, so over-subscription is
    /// safe too.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Returns the configuration with the given key policy.
    pub fn with_key_policy(mut self, policy: KeyPolicy) -> Self {
        self.key_policy = policy;
        self
    }

    /// Returns the configuration with the dense metrics shadow attached
    /// (differential testing of the sparse table).
    pub fn with_dense_shadow(mut self) -> Self {
        self.dense_shadow = true;
        self
    }
}

/// The phase of `π_ba` a failure is attributed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ProtocolPhase {
    /// Session establishment (setup, corruption, `f_ae-comm`).
    Establishment,
    /// Step 2a: `f_ba` among the supreme committee.
    CommitteeBa,
    /// Step 2b: `f_ct` among the supreme committee.
    CommitteeCoin,
    /// Steps 3–8: certification and spread.
    Certification,
}

impl fmt::Display for ProtocolPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProtocolPhase::Establishment => "establishment",
            ProtocolPhase::CommitteeBa => "committee-ba",
            ProtocolPhase::CommitteeCoin => "committee-coin",
            ProtocolPhase::Certification => "certification",
        };
        f.write_str(s)
    }
}

/// Why a `π_ba` execution could not complete.
///
/// These conditions were previously mid-run panics; they are now
/// structured outcomes so chaos harnesses can drive the protocol past its
/// design fault bound and observe *graceful* failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// The corruption plan produced `corrupt >= n/3` parties.
    CorruptionBound {
        /// Number of corrupted parties.
        corrupt: usize,
        /// Total parties.
        n: usize,
    },
    /// A sub-protocol hit its round limit without all honest machines
    /// completing.
    Timeout {
        /// The phase that timed out.
        phase: ProtocolPhase,
        /// Rounds executed before giving up.
        rounds: u64,
    },
    /// Honest committee members finished with differing values (or none).
    Disagreement {
        /// The phase that disagreed.
        phase: ProtocolPhase,
        /// Number of distinct honest output values observed.
        distinct: usize,
    },
    /// A phase ended without delivering output to every honest party,
    /// but the parties that *did* receive output all agree — a liveness
    /// loss with safety intact (e.g., a fault-injection adversary jammed
    /// certificate aggregation so `σ_root` never formed).
    Stalled {
        /// The phase that stalled.
        phase: ProtocolPhase,
        /// Honest parties that obtained an output.
        delivered: usize,
        /// Total honest parties.
        honest: usize,
    },
    /// The delivery backend failed (socket closed, exchange watchdog,
    /// replica divergence) during a phase. Only possible when a
    /// [`pba_net::transport::Transport`] is attached to the session's
    /// network.
    Transport {
        /// The phase running when the transport failed.
        phase: ProtocolPhase,
        /// The recorded transport failure.
        error: pba_net::TransportError,
    },
    /// Another instance would overdraw the establishment's one-time
    /// signing material (MSS leaf capacity). The service stays usable for
    /// inspection; agreeing again requires a fresh establishment.
    KeyBudget {
        /// The structured key error ([`KeyError::BudgetExhausted`],
        /// naming the refused instance).
        error: KeyError,
    },
}

impl ProtocolError {
    /// The phase this error is attributed to.
    pub fn phase(&self) -> ProtocolPhase {
        match self {
            ProtocolError::CorruptionBound { .. } => ProtocolPhase::Establishment,
            ProtocolError::Timeout { phase, .. } => *phase,
            ProtocolError::Disagreement { phase, .. } => *phase,
            ProtocolError::Stalled { phase, .. } => *phase,
            ProtocolError::Transport { phase, .. } => *phase,
            ProtocolError::KeyBudget { .. } => ProtocolPhase::Certification,
        }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::CorruptionBound { corrupt, n } => {
                write!(f, "corruption {corrupt} not below n/3 = {}", n / 3)
            }
            ProtocolError::Timeout { phase, rounds } => {
                write!(f, "{phase} hit its round limit after {rounds} rounds")
            }
            ProtocolError::Disagreement { phase, distinct } => {
                write!(f, "{phase} ended with {distinct} distinct honest values")
            }
            ProtocolError::Stalled {
                phase,
                delivered,
                honest,
            } => {
                write!(
                    f,
                    "{phase} stalled: only {delivered} of {honest} honest parties obtained output"
                )
            }
            ProtocolError::Transport { phase, error } => {
                write!(f, "{phase} aborted by transport failure: {error}")
            }
            ProtocolError::KeyBudget { error } => {
                write!(f, "certification refused: {error}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Outcome of a fallible `π_ba` execution ([`try_run_ba`]).
#[derive(Clone, Debug)]
pub enum RunOutcome {
    /// The protocol ran to completion (agreement/validity flags inside may
    /// still be false — that distinction is the harness's to judge).
    Completed(BaOutcome),
    /// The protocol detected an unrecoverable condition and stopped.
    Failed {
        /// The phase that failed.
        phase: ProtocolPhase,
        /// The structured reason.
        reason: ProtocolError,
    },
}

impl RunOutcome {
    /// The completed outcome, if any.
    pub fn completed(&self) -> Option<&BaOutcome> {
        match self {
            RunOutcome::Completed(out) => Some(out),
            RunOutcome::Failed { .. } => None,
        }
    }

    /// True when the execution ran to completion.
    pub fn is_completed(&self) -> bool {
        matches!(self, RunOutcome::Completed(_))
    }
}

/// Per-step communication snapshot (honest parties only).
#[derive(Clone, Debug)]
pub struct StepReport {
    /// Step label (mirrors Fig. 3 numbering).
    pub label: &'static str,
    /// Total honest bytes sent during this step.
    pub total_bytes: u64,
    /// Maximum per-honest-party cumulative bytes after this step.
    pub max_bytes_after: u64,
}

/// Outcome of one `π_ba` execution.
#[derive(Clone, Debug)]
pub struct BaOutcome {
    /// Per-party outputs (`None` = no output; corrupt parties are `None`).
    pub outputs: Vec<Option<u8>>,
    /// Whether every honest party produced the same output.
    pub agreement: bool,
    /// The common honest output, when agreement holds.
    pub output: Option<u8>,
    /// Whether validity held (all-honest-equal inputs forced that output).
    pub validity: bool,
    /// Aggregate communication report over honest parties.
    pub report: Report,
    /// Per-step communication breakdown.
    pub steps: Vec<StepReport>,
    /// Per-(wire tag) honest byte attribution — the exact dimension behind
    /// `report`'s totals (see [`BaOutcome::tags_conserved`]).
    pub breakdown: TagBreakdown,
    /// Whether every party's per-tag marginals summed exactly to its
    /// untyped byte totals at the end of the run.
    pub tags_conserved: bool,
    /// The corrupt set used.
    pub corrupt: BTreeSet<PartyId>,
    /// Size of the final certificate in bytes.
    pub certificate_len: Option<usize>,
}

/// Outcome of one certified round within a [`Session`].
#[derive(Clone, Debug)]
pub struct RoundOutcome {
    /// The value the supreme committee agreed on.
    pub y: u8,
    /// Per-party outputs.
    pub outputs: Vec<Option<u8>>,
    /// Size of the certificate, if one was produced.
    pub certificate_len: Option<usize>,
}

/// Outcome of one certified round over an arbitrary byte value.
#[derive(Clone, Debug)]
pub struct BytesRoundOutcome {
    /// The certified value.
    pub value: Vec<u8>,
    /// Per-party received values (`None` = no verified certificate).
    pub outputs: Vec<Option<Vec<u8>>>,
    /// Size of the certificate, if one was produced.
    pub certificate_len: Option<usize>,
}

/// How [`Service::try_run_stream`] schedules consecutive instances.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamMode {
    /// Instances run back-to-back: instance `i` certifies and spreads
    /// before instance `i+1` starts. The first instance of a sequential
    /// stream is transcript-identical to a single-shot [`try_run_ba`] at
    /// the same `(seed, config)`.
    Sequential,
    /// Fast-HotStuff-style chaining: instance `i`'s certification
    /// (steps 3–8) is deferred into instance `i+1`'s committee phase and
    /// its rounds are absorbed by the concurrently-running committee
    /// rounds ([`pba_net::runner::run_phase_overlapped`]). Pipelining
    /// hides round latency, never bytes — every charge lands in full.
    Pipelined,
}

/// The multi-value fan-in payload: one party's ℓ-byte input ascending the
/// tree toward the supreme committee as a whole framed value
/// ([`Service::robust_committee_values`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MvInput {
    /// Instance (service epoch) the input belongs to.
    pub epoch: u64,
    /// The party's input value.
    pub value: Vec<u8>,
}

impl Encode for MvInput {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.epoch.encode(buf);
        self.value.encode(buf);
    }
}

impl Decode for MvInput {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(MvInput {
            epoch: u64::decode(r)?,
            value: Vec::<u8>::decode(r)?,
        })
    }
}

impl WireMsg for MvInput {
    const TAG: u8 = tag::MV_INPUT;
    const STEP: u8 = step::NONE;
}

/// Per-instance slice of a [`Service`]'s cumulative accounting: deltas of
/// the honest byte totals, the round clock, the step snapshots, and the
/// scheme's certificate-cache counters, taken between the instance's
/// open and its settlement.
#[derive(Clone, Debug)]
pub struct InstanceReport {
    /// The instance's index (the service epoch it ran as).
    pub index: u64,
    /// Honest bytes charged during the instance.
    pub total_bytes: u64,
    /// Clock rounds consumed by the instance. Under pipelining, the
    /// uncovered remainder of a predecessor's deferred certification is
    /// charged to the successor's window.
    pub rounds: u64,
    /// Rounds the instance's deferred certification ran under the overlap
    /// window (0 when not pipelined).
    pub overlapped_rounds: u64,
    /// Step snapshots recorded during the instance.
    pub steps: Vec<StepReport>,
    /// Certificate-cache counter deltas, when the scheme exposes them.
    pub cache: Option<CacheStats>,
    /// The delivery-transcript digest after the instance settled (only
    /// when a transport is attached): chained, so instance `k`'s digest
    /// commits the whole stream through instance `k`.
    pub transcript_digest: Option<Digest>,
}

/// Verdicts of one streamed instance over an ℓ-byte value.
#[derive(Clone, Debug)]
pub struct MultiValueOutcome {
    /// The value the supreme committee agreed on and certified.
    pub value: Vec<u8>,
    /// Per-party received values (`None` = no verified certificate).
    pub outputs: Vec<Option<Vec<u8>>>,
    /// Whether every honest party received the same value.
    pub agreement: bool,
    /// Whether validity held (unanimous honest inputs forced the value).
    pub validity: bool,
    /// Size of the certificate, if one was produced.
    pub certificate_len: Option<usize>,
}

/// One instance of a stream: verdicts or a structured failure, plus the
/// instance-scoped accounting slice.
#[derive(Clone, Debug)]
pub struct InstanceOutcome {
    /// The instance's index.
    pub index: u64,
    /// Verdicts, or the structured reason the instance failed.
    pub result: Result<MultiValueOutcome, ProtocolError>,
    /// The instance's accounting slice.
    pub report: InstanceReport,
}

/// Outcome of [`Service::try_run_stream`]: every instance in order, plus
/// stream-level round accounting.
#[derive(Clone, Debug)]
pub struct StreamOutcome {
    /// Per-instance outcomes, in execution order.
    pub instances: Vec<InstanceOutcome>,
    /// Instances whose honest parties all agreed.
    pub decisions: usize,
    /// Clock rounds the whole stream consumed (excludes establishment).
    pub total_rounds: u64,
    /// Certification rounds hidden inside successor committee phases by
    /// pipelining (0 for sequential streams).
    pub overlapped_rounds: u64,
}

/// The step-3 dissemination payload: the agreed value and coin seed,
/// bound to the session epoch (Fig. 3 step 3's `(y, s)` pair).
///
/// This is what every virtual identity signs in step 4, so the wire
/// encoding (including the `{tag, step}` header) *is* the signed message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ValueSeed {
    /// Session epoch (certified-round counter) — binds signatures to one
    /// execution and blocks cross-epoch replay.
    pub epoch: u64,
    /// The value the supreme committee agreed on.
    pub value: Vec<u8>,
    /// The coin seed `s` driving the PRF spread.
    pub seed: Digest,
}

impl Encode for ValueSeed {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.epoch.encode(buf);
        self.value.encode(buf);
        self.seed.encode(buf);
    }
}

impl Decode for ValueSeed {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(ValueSeed {
            epoch: u64::decode(r)?,
            value: Vec::<u8>::decode(r)?,
            seed: Digest::decode(r)?,
        })
    }
}

impl WireMsg for ValueSeed {
    const TAG: u8 = tag::VALUE_SEED;
    const STEP: u8 = step::DISSEMINATE;
}

/// The step-6 dissemination payload: the certified `(y, s)` plus the
/// aggregate root signature `σ_root` (Fig. 3 step 6's triple).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Certificate {
    /// Session epoch the certificate was produced in.
    pub epoch: u64,
    /// The certified value.
    pub value: Vec<u8>,
    /// The coin seed `s`.
    pub seed: Digest,
    /// The scheme-encoded aggregate signature `σ_root`.
    pub sig: Vec<u8>,
}

impl Encode for Certificate {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.epoch.encode(buf);
        self.value.encode(buf);
        self.seed.encode(buf);
        self.sig.encode(buf);
    }
}

impl Decode for Certificate {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Certificate {
            epoch: u64::decode(r)?,
            value: Vec::<u8>::decode(r)?,
            seed: Digest::decode(r)?,
            sig: Vec::<u8>::decode(r)?,
        })
    }
}

impl WireMsg for Certificate {
    const TAG: u8 = tag::CERTIFICATE;
    const STEP: u8 = step::CERTIFY;
}

/// Byzantine strategy for the committee sub-protocols: equivocate
/// phase-king values (also disturbing the coin-toss rounds with junk).
struct CommitteeByzantine {
    corrupted: BTreeSet<PartyId>,
    committee: Vec<PartyId>,
}

impl Adversary for CommitteeByzantine {
    fn corrupted(&self) -> &BTreeSet<PartyId> {
        &self.corrupted
    }
    fn on_round(
        &mut self,
        round: u64,
        _rushed: &BTreeMap<PartyId, Vec<Envelope>>,
        sender: &mut AdvSender<'_>,
    ) {
        for &bad in self.corrupted.iter() {
            if !self.committee.contains(&bad) {
                continue;
            }
            for (j, &peer) in self.committee.iter().enumerate() {
                if self.corrupted.contains(&peer) {
                    continue;
                }
                // Conflicting values per peer in every sub-protocol round.
                let v = (j % 2) as u8;
                let msg = match round % 3 {
                    0 => PkMsg::Value(v),
                    1 => PkMsg::Propose(v),
                    _ => PkMsg::King(v),
                };
                sender.send_msg(bad, peer, &msg);
            }
        }
    }
}

struct SilentCommittee {
    corrupted: BTreeSet<PartyId>,
}

impl Adversary for SilentCommittee {
    fn corrupted(&self) -> &BTreeSet<PartyId> {
        &self.corrupted
    }
    fn on_round(&mut self, _: u64, _: &BTreeMap<PartyId, Vec<Envelope>>, _: &mut AdvSender<'_>) {}
}

/// An established `π_ba` service: everything establishment builds once —
/// SRDS setup, per-virtual-identity keys, the `f_ae-comm` tree with its
/// CSR layout, corruption state, and the metered network.
///
/// One service supports many agreement [`Instance`]s (or legacy
/// [`Service::certified_round`]s) — the amortization behind the broadcast
/// corollary (Cor. 1.2(1)) and the decisions/sec benchmark. Each instance
/// draws one slot of the establishment's one-time signing budget
/// ([`Service::budget`]); overdrawing is the structured
/// [`ProtocolError::KeyBudget`], never a silent key reuse.
pub struct Service<'a, S: Srds> {
    scheme: &'a S,
    /// The configuration the service was established with.
    pub config: BaConfig,
    params: TreeParams,
    pp: S::PublicParams,
    keys: KeyStore<S>,
    /// slot → (party index, key occurrence index)
    slot_sk: Vec<(usize, usize)>,
    keyboard: S::KeyBoard,
    tree: Tree,
    analysis: TreeAnalysis,
    corrupt: BTreeSet<PartyId>,
    honest: Vec<PartyId>,
    /// The metered network (public so harnesses can read metrics).
    pub net: Network,
    prg: Prg,
    steps: Vec<StepReport>,
    epoch: u64,
    /// One-time signing capacity, when the scheme's is bounded (MSS).
    budget: Option<LeafBudget>,
    /// The most recent instance's encoded [`Certificate`], kept for
    /// Fast-HotStuff-style chained validation by the next instance.
    last_certificate: Option<Vec<u8>>,
    /// Per-instance accounting slices, aggregated at the service level.
    instance_reports: Vec<InstanceReport>,
}

/// The pre-split name of [`Service`]: one establishment serving many
/// certified rounds. Kept as an alias so existing call sites read on.
pub type Session<'a, S> = Service<'a, S>;

impl<'a, S> Service<'a, S>
where
    S: Srds,
    S::Signature: Encode + Decode,
{
    /// Establishes a session: SRDS setup, per-virtual-identity keys,
    /// adaptive-during-setup corruption, and the `f_ae-comm` tree.
    ///
    /// # Panics
    ///
    /// Panics if the corruption plan reaches `n/3`. Use
    /// [`Session::try_establish`] for a fallible variant.
    pub fn establish(scheme: &'a S, config: &BaConfig) -> Self {
        match Self::try_establish(scheme, config) {
            Ok(session) => session,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible establishment: returns
    /// [`ProtocolError::CorruptionBound`] instead of panicking when the
    /// corruption plan reaches `n/3`.
    pub fn try_establish(scheme: &'a S, config: &BaConfig) -> Result<Self, ProtocolError> {
        Self::try_establish_over(scheme, config, None)
    }

    /// [`Session::try_establish`] over an explicit delivery backend: when
    /// `transport` is given, it is attached to the session's network
    /// before any traffic flows, so even interactive (KSSV) establishment
    /// crosses the transport — and the delivery transcript is recorded
    /// from the very first exchange, making the whole run comparable
    /// against an in-process oracle ([`pba_net::transport`]).
    ///
    /// # Errors
    ///
    /// [`ProtocolError::CorruptionBound`] as in [`Session::try_establish`];
    /// [`ProtocolError::Transport`] if the backend fails during interactive
    /// establishment.
    ///
    /// # Panics
    ///
    /// Panics if the config also carries timing-fault chaos — a transport
    /// and a [`pba_net::TimingModel`] are mutually exclusive.
    pub fn try_establish_over(
        scheme: &'a S,
        config: &BaConfig,
        transport: Option<Box<dyn Transport>>,
    ) -> Result<Self, ProtocolError> {
        let params = TreeParams::scaled(config.n, config.z);
        let n = config.n;
        let total_slots = params.total_slots();
        let prg = Prg::from_seed_label(&config.seed, "pi-ba");
        let mut net = Network::new(n);
        if config.dense_shadow {
            net.enable_metrics_shadow();
        }
        if let Some(transport) = transport {
            net.attach_transport(transport);
        }

        // Setup: SRDS public parameters and per-virtual-identity keys.
        // Under a lazy policy nothing is generated here: verification keys
        // are derived per slot in the idmap loop below (the same pure PRG
        // children, so bit-identical to the eager loop), and signing keys
        // are re-derived at the moment of signing.
        let pp = scheme.setup(total_slots, &mut prg.child("setup", 0));
        let keys_per_party = config.z + 2;
        #[allow(clippy::type_complexity)]
        let eager_keys: Option<Vec<Vec<(S::VerificationKey, S::SigningKey)>>> =
            match config.key_policy {
                KeyPolicy::Eager => Some(
                    (0..n)
                        .map(|i| {
                            let kprg = prg.child("party-keys", i as u64);
                            (0..keys_per_party)
                                .map(|j| {
                                    let mut slot_prg = kprg.child("slot", j as u64);
                                    scheme.keygen(&pp, &mut slot_prg)
                                })
                                .collect()
                        })
                        .collect(),
                ),
                KeyPolicy::Lazy | KeyPolicy::Sampled => None,
            };

        // Corruption: adaptive during setup (sees all public keys) — or,
        // for [`CorruptionPlan::Adaptive`], adaptive *post-setup*: the
        // adversary watches the tree being established and only then
        // spends its budget on the highest-takeover-value committees
        // ([`pba_aetree::analysis::adaptive_targets`]).
        let mut pre_corrupt: BTreeSet<PartyId> = BTreeSet::new();
        let adaptive_budget = match &config.corruption {
            CorruptionPlan::Adaptive { t } => {
                if 3 * t >= n {
                    return Err(ProtocolError::CorruptionBound { corrupt: *t, n });
                }
                Some(*t)
            }
            plan => {
                pre_corrupt = plan.materialize(n, &mut prg.child("corrupt", 0));
                if 3 * pre_corrupt.len() >= n {
                    return Err(ProtocolError::CorruptionBound {
                        corrupt: pre_corrupt.len(),
                        n,
                    });
                }
                None
            }
        };

        // Step 1: f_ae-comm — the tree, from post-corruption randomness.
        // A post-setup adaptive adversary is empty during establishment
        // (it observes honestly and corrupts only once the tree stands).
        let tree = match config.establishment {
            Establishment::Charged => {
                let mut tree_seed = config.seed.clone();
                tree_seed.extend_from_slice(b"/ae-tree");
                let tree = Tree::build(&params, &tree_seed);
                charge_establishment(&mut net, &tree);
                tree
            }
            Establishment::Interactive => {
                // Committee-level misbehaviour during the election is
                // exercised by the vss_coin/kssv adversarial tests; the
                // session-level profiles act from step 2 on.
                let mut adversary = SilentCommittee {
                    corrupted: pre_corrupt.clone(),
                };
                match crate::kssv::try_establish_interactive(
                    &mut net,
                    &params,
                    &mut adversary,
                    &mut prg.child("kssv-establish", 0),
                ) {
                    Ok(election) => election.tree,
                    Err(outcome) => {
                        // A failed group toss: a dead transport if one is
                        // attached and recorded an error, a round-budget
                        // timeout otherwise.
                        if let Some(error) = net.transport_error() {
                            return Err(ProtocolError::Transport {
                                phase: ProtocolPhase::Establishment,
                                error: error.clone(),
                            });
                        }
                        return Err(ProtocolError::Timeout {
                            phase: ProtocolPhase::Establishment,
                            rounds: outcome.rounds,
                        });
                    }
                }
            }
        };
        let corrupt = match adaptive_budget {
            Some(t) => adaptive_targets(&tree, t, &mut prg.child("adaptive-corrupt", 0)),
            None => pre_corrupt,
        };
        let honest: Vec<PartyId> = (0..n as u64)
            .map(PartyId)
            .filter(|p| !corrupt.contains(p))
            .collect();
        let analysis = TreeAnalysis::analyze(&tree, &corrupt);

        // Timing faults: if the chaos spec carries a timing axis (latency,
        // partition, churn), install the seeded delay-queue model now — the
        // tick clock starts lazily at the first committee phase, so charged
        // and interactive establishment see the same timing schedule.
        if let Some(spec) = &config.chaos {
            if let Some(model) = spec.timing_model(&corrupt, n, &prg.child("timing", 0)) {
                net.set_timing(model);
            }
        }

        // idmap: slot s ↔ owner's j-th key.
        let mut occurrence: Vec<usize> = vec![0; n];
        let mut vks: Vec<S::VerificationKey> = Vec::with_capacity(total_slots);
        let mut slot_sk: Vec<(usize, usize)> = Vec::with_capacity(total_slots);
        for s in 0..total_slots as u64 {
            let owner = tree.slot_party(s);
            let j = occurrence[owner.index()];
            occurrence[owner.index()] += 1;
            assert!(
                j < keys_per_party,
                "party {owner} needs more than {keys_per_party} keys"
            );
            let vk = match &eager_keys {
                Some(keys) => keys[owner.index()][j].0.clone(),
                None => {
                    let mut slot_prg = prg.child("party-keys", owner.0).child("slot", j as u64);
                    scheme.keygen(&pp, &mut slot_prg).0
                }
            };
            vks.push(vk);
            slot_sk.push((owner.index(), j));
        }
        let keyboard = scheme.prepare(&pp, &vks);

        let keys = match (config.key_policy, eager_keys) {
            (_, Some(keys)) => KeyStore::Eager(keys),
            (KeyPolicy::Lazy, None) => KeyStore::Lazy { instantiable: None },
            (_, None) => KeyStore::Lazy {
                instantiable: Some(sampled_mask(&tree, &corrupt)),
            },
        };

        let budget = scheme.epoch_capacity(&pp).map(LeafBudget::new);
        let mut session = Service {
            scheme,
            config: config.clone(),
            params,
            pp,
            keys,
            slot_sk,
            keyboard,
            tree,
            analysis,
            corrupt,
            honest,
            net,
            prg,
            steps: Vec::new(),
            epoch: 0,
            budget,
            last_certificate: None,
            instance_reports: Vec::new(),
        };
        session.snap("1:ae-comm-establish");
        Ok(session)
    }

    /// The supreme committee.
    pub fn supreme_committee(&self) -> Vec<PartyId> {
        self.tree.root_committee().to_vec()
    }

    /// The corrupt set.
    pub fn corrupt(&self) -> &BTreeSet<PartyId> {
        &self.corrupt
    }

    /// The honest parties.
    pub fn honest(&self) -> &[PartyId] {
        &self.honest
    }

    /// The communication tree.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// The tree parameters.
    pub fn params(&self) -> &TreeParams {
        &self.params
    }

    /// The goodness analysis of the tree under the session's corrupt set.
    pub fn analysis(&self) -> &TreeAnalysis {
        &self.analysis
    }

    /// Per-step communication snapshots so far.
    pub fn steps(&self) -> &[StepReport] {
        &self.steps
    }

    /// Aggregate honest-party communication report.
    pub fn report(&self) -> Report {
        self.net.metrics().report_for(self.honest.iter().copied())
    }

    /// Per-(wire tag) honest byte attribution — the per-step dimension
    /// behind [`Session::report`]'s totals.
    pub fn breakdown(&self) -> TagBreakdown {
        self.net
            .metrics()
            .breakdown_for(self.honest.iter().copied())
    }

    /// Exact conservation of the per-tag attribution: for every party the
    /// per-tag sent/received marginals sum to the untyped byte totals.
    pub fn tags_conserve_totals(&self) -> bool {
        self.net.metrics().tags_conserve_totals()
    }

    /// The signing key for `party`'s `j`-th virtual identity, resolved
    /// under the session's [`KeyPolicy`]: borrowed from the eager store,
    /// re-derived from the session PRG (Lazy), or a structured
    /// [`KeyError`] for a party the Sampled policy left uninstantiated.
    ///
    /// Derivation is the same pure PRG child used at establishment, so a
    /// re-derived key is bit-identical to its eager counterpart.
    pub fn signing_key(&self, party: PartyId, j: usize) -> Result<KeyHandle<'_, S>, KeyError> {
        match &self.keys {
            KeyStore::Eager(keys) => Ok(KeyHandle::Borrowed(&keys[party.index()][j].1)),
            KeyStore::Lazy { instantiable } => {
                if let Some(mask) = instantiable {
                    if !mask[party.index()] {
                        return Err(KeyError::NotInstantiated {
                            party,
                            key_index: j,
                        });
                    }
                }
                let mut slot_prg = self
                    .prg
                    .child("party-keys", party.0)
                    .child("slot", j as u64);
                Ok(KeyHandle::Owned(
                    self.scheme.keygen(&self.pp, &mut slot_prg).1,
                ))
            }
        }
    }

    fn snap(&mut self, label: &'static str) {
        let total: u64 = self
            .honest
            .iter()
            .map(|&p| self.net.metrics().party(p).bytes_sent)
            .sum();
        let prior: u64 = self.steps.iter().map(|s| s.total_bytes).sum();
        self.steps.push(StepReport {
            label,
            total_bytes: total - prior,
            max_bytes_after: self.report().max_bytes_per_party,
        });
    }

    /// Round driver for the committee sub-protocols: lockstep unless the
    /// chaos spec demands a per-round delivery window wider than one tick.
    fn round_driver(&self) -> RoundDriver {
        let ticks = self
            .config
            .chaos
            .as_ref()
            .map_or(1, |spec| spec.round_budget());
        if ticks > 1 {
            RoundDriver::PartialSynchrony { ticks }
        } else {
            RoundDriver::Lockstep
        }
    }

    /// Extra machine rounds granted to committee phases so recoverable
    /// timing faults (healing partitions, rejoining churn victims) can
    /// catch up before the budget expires.
    fn round_slack(&self) -> u64 {
        let ticks = self.round_driver().ticks();
        self.config
            .chaos
            .as_ref()
            .map_or(0, |spec| spec.round_slack(ticks))
    }

    /// The session's recorded transport failure, attributed to `phase` —
    /// checked before mapping an incomplete phase to a generic timeout,
    /// so socket deaths report as what they are.
    fn transport_failure(&self, phase: ProtocolPhase) -> Option<ProtocolError> {
        self.net
            .transport_error()
            .map(|error| ProtocolError::Transport {
                phase,
                error: error.clone(),
            })
    }

    fn committee_adversary(&self, committee: &[PartyId]) -> Box<dyn Adversary> {
        if let Some(spec) = &self.config.chaos {
            return spec.build(
                self.corrupt.clone(),
                self.config.n,
                &self.prg.child("chaos", self.epoch),
            );
        }
        match self.config.profile {
            AdversaryProfile::Passive => Box::new(SilentCommittee {
                corrupted: self.corrupt.clone(),
            }),
            AdversaryProfile::Byzantine => Box::new(CommitteeByzantine {
                corrupted: self.corrupt.clone(),
                committee: committee.to_vec(),
            }),
        }
    }

    /// Step 2a: `f_ba` among the supreme committee on the given inputs.
    ///
    /// # Panics
    ///
    /// Panics if honest committee members fail to agree (impossible below
    /// the fault bound). Use [`Session::try_committee_ba`] for a fallible
    /// variant.
    pub fn committee_ba(&mut self, committee_inputs: &BTreeMap<PartyId, u8>) -> u8 {
        match self.try_committee_ba(committee_inputs) {
            Ok(y) => y,
            Err(e) => panic!("supreme committee BA failed: {e}"),
        }
    }

    /// Fallible step 2a: phase-king under the session's committee
    /// adversary, with the phase round limit surfaced as
    /// [`ProtocolError::Timeout`] and honest divergence as
    /// [`ProtocolError::Disagreement`].
    pub fn try_committee_ba(
        &mut self,
        committee_inputs: &BTreeMap<PartyId, u8>,
    ) -> Result<u8, ProtocolError> {
        let supreme = self.supreme_committee();
        let mut adversary = self.committee_adversary(&supreme);
        let mut machines: BTreeMap<PartyId, PhaseKing<u8>> = supreme
            .iter()
            .filter(|p| !self.corrupt.contains(p))
            .map(|&p| {
                let input = committee_inputs.get(&p).copied().unwrap_or(0);
                (p, PhaseKing::new(supreme.clone(), p, input))
            })
            .collect();
        let driver = self.round_driver();
        let slack = self.round_slack();
        let outcome = {
            let mut erased: BTreeMap<PartyId, Box<dyn Machine + Send + '_>> = machines
                .iter_mut()
                .map(|(&id, m)| (id, Box::new(m) as Box<dyn Machine + Send + '_>))
                .collect();
            run_phase_driven(
                &mut self.net,
                &mut erased,
                adversary.as_mut(),
                rounds_for(supreme.len()) + 6 + slack,
                driver,
                self.config.threads,
            )
        };
        self.ba_phase_verdict(outcome, &machines)
    }

    /// Maps a committee-BA phase outcome to the agreed value or its
    /// structured failure (shared by the plain and chained variants).
    fn ba_phase_verdict(
        &self,
        outcome: PhaseOutcome,
        machines: &BTreeMap<PartyId, PhaseKing<u8>>,
    ) -> Result<u8, ProtocolError> {
        if !outcome.completed {
            if let Some(e) = self.transport_failure(ProtocolPhase::CommitteeBa) {
                return Err(e);
            }
            return Err(ProtocolError::Timeout {
                phase: ProtocolPhase::CommitteeBa,
                rounds: outcome.rounds,
            });
        }
        let values: BTreeSet<u8> = machines
            .values()
            .filter_map(|m| m.output().copied())
            .collect();
        if values.len() != 1 {
            return Err(ProtocolError::Disagreement {
                phase: ProtocolPhase::CommitteeBa,
                distinct: values.len(),
            });
        }
        Ok(*values.iter().next().expect("nonempty"))
    }

    /// Step 2a under the pipelined driver: while the committee machines
    /// run, each machine round's slack validates the previous instance's
    /// certificate for one more honest supreme-committee member — the
    /// Fast-HotStuff chaining shape, where validators check the parent
    /// quorum certificate while voting on the child. Validation is
    /// compute-only (an already-delivered payload is re-verified; no
    /// envelopes, no charges), so transcript and metrics are identical to
    /// [`Service::try_committee_ba`]; its observable effect is the
    /// scheme's certificate cache staying warm across instances. Members
    /// the phase's rounds did not cover validate inline afterwards.
    fn try_committee_ba_chained(
        &mut self,
        committee_inputs: &BTreeMap<PartyId, u8>,
    ) -> Result<u8, ProtocolError> {
        let supreme = self.supreme_committee();
        let mut adversary = self.committee_adversary(&supreme);
        let mut machines: BTreeMap<PartyId, PhaseKing<u8>> = supreme
            .iter()
            .filter(|p| !self.corrupt.contains(p))
            .map(|&p| {
                let input = committee_inputs.get(&p).copied().unwrap_or(0);
                (p, PhaseKing::new(supreme.clone(), p, input))
            })
            .collect();
        let driver = self.round_driver();
        let slack = self.round_slack();
        // The chained certificate, decoded once; honest members still
        // owing a validation, popped one per machine round.
        let chain: Option<(Vec<u8>, S::Signature)> =
            self.last_certificate.as_ref().and_then(|bytes| {
                let cert = wire::decode_msg::<Certificate>(bytes).ok()?;
                let sig: S::Signature = decode_from_slice(&cert.sig).ok()?;
                let signed = wire::encode_msg(&ValueSeed {
                    epoch: cert.epoch,
                    value: cert.value,
                    seed: cert.seed,
                });
                Some((signed, sig))
            });
        let mut validators: Vec<PartyId> = supreme
            .iter()
            .filter(|p| !self.corrupt.contains(p))
            .copied()
            .collect();
        let scheme = self.scheme;
        let pp = &self.pp;
        let keyboard = &self.keyboard;
        let outcome = {
            let mut erased: BTreeMap<PartyId, Box<dyn Machine + Send + '_>> = machines
                .iter_mut()
                .map(|(&id, m)| (id, Box::new(m) as Box<dyn Machine + Send + '_>))
                .collect();
            let mut background = |_net: &mut Network, _round: u64| {
                let Some((signed, sig)) = &chain else {
                    return true;
                };
                match validators.pop() {
                    Some(_member) => {
                        // Every member performs the same verification; the
                        // scheme's certificate cache collapses the repeats
                        // into warm hits.
                        let _ = scheme.verify(pp, keyboard, signed, sig);
                        validators.is_empty()
                    }
                    None => true,
                }
            };
            let (outcome, _absorbed) = run_phase_overlapped(
                &mut self.net,
                &mut erased,
                adversary.as_mut(),
                rounds_for(supreme.len()) + 6 + slack,
                driver,
                self.config.threads,
                Some(&mut background),
            );
            outcome
        };
        if let Some((signed, sig)) = &chain {
            for _member in validators.drain(..) {
                let _ = scheme.verify(pp, keyboard, signed, sig);
            }
        }
        self.ba_phase_verdict(outcome, &machines)
    }

    /// Step 2b: `f_ct` among the supreme committee.
    ///
    /// # Panics
    ///
    /// Panics if honest members fail to agree on the seed. Use
    /// [`Session::try_committee_coin`] for a fallible variant.
    pub fn committee_coin(&mut self) -> Digest {
        match self.try_committee_coin() {
            Ok(s) => s,
            Err(e) => panic!("coin tossing failed: {e}"),
        }
    }

    /// Fallible step 2b: commit–echo–reveal coin toss, with honest seed
    /// divergence surfaced as [`ProtocolError::Disagreement`].
    pub fn try_committee_coin(&mut self) -> Result<Digest, ProtocolError> {
        let supreme = self.supreme_committee();
        let mut adversary = self.committee_adversary(&supreme);
        let epoch = self.epoch;
        let driver = self.round_driver();
        let slack = self.round_slack();
        let seeds = match toss_coin_vss_driven(
            &mut self.net,
            &supreme,
            adversary.as_mut(),
            &mut self.prg.child("coin", epoch),
            driver,
            slack,
            self.config.threads,
        ) {
            Ok(seeds) => seeds,
            Err(outcome) => {
                if let Some(e) = self.transport_failure(ProtocolPhase::CommitteeCoin) {
                    return Err(e);
                }
                return Err(ProtocolError::Timeout {
                    phase: ProtocolPhase::CommitteeCoin,
                    rounds: outcome.rounds,
                });
            }
        };
        let values: BTreeSet<Digest> = seeds.values().copied().collect();
        if values.len() != 1 {
            return Err(ProtocolError::Disagreement {
                phase: ProtocolPhase::CommitteeCoin,
                distinct: values.len(),
            });
        }
        Ok(*values.iter().next().expect("nonempty"))
    }

    /// Steps 3–8 for an already-agreed `(y, s)`: certified dissemination,
    /// SRDS aggregation up the tree, certificate dissemination, and the
    /// PRF spread.
    pub fn certify_and_spread(&mut self, y: u8, s: Digest) -> RoundOutcome {
        let bytes_outcome = self.certify_bytes(vec![y], s);
        RoundOutcome {
            y,
            outputs: bytes_outcome
                .outputs
                .iter()
                .map(|o| o.as_ref().and_then(|v| v.first().copied()))
                .collect(),
            certificate_len: bytes_outcome.certificate_len,
        }
    }

    /// The byte-value core of steps 3–8, shared by bit agreement,
    /// multi-execution broadcast, and the MPC corollary: certify an
    /// arbitrary `value` the supreme committee already agreed on and
    /// deliver it to everyone. Advances the service epoch.
    pub fn certify_bytes(&mut self, value: Vec<u8>, s: Digest) -> BytesRoundOutcome {
        let epoch = self.epoch;
        let outcome = self.certify_bytes_at(epoch, value, s);
        self.epoch += 1;
        outcome
    }

    /// [`Service::certify_bytes`] pinned to an explicit epoch, without
    /// advancing the service's own: the deferred-certification path of
    /// pipelined streaming, where instance `i`'s steps 3–8 run after the
    /// epoch has already moved on to instance `i+1`. Everything in here
    /// keys off the `epoch` argument (dissemination payloads, signatures,
    /// replay filters), never off `self.epoch`.
    pub fn certify_bytes_at(&mut self, epoch: u64, value: Vec<u8>, s: Digest) -> BytesRoundOutcome {
        let n = self.config.n;
        let params = self.params;

        // ---- Step 3: disseminate (epoch, value, s). ----
        let ys_payload = wire::encode_msg(&ValueSeed {
            epoch,
            value: value.clone(),
            seed: s,
        });
        // Wire-valid but wrong content: survives the hardened decode and
        // dies at signature verification, like a real equivocation would.
        let garbage = wire::encode_msg(&ValueSeed {
            epoch,
            value: vec![0xeeu8; value.len()],
            seed: Digest::ZERO,
        });
        let mut adv: Box<pba_aetree::fae::AdversaryFn<'static>> = match self.config.profile {
            AdversaryProfile::Passive => Box::new(honest_adversary()),
            AdversaryProfile::Byzantine => Box::new(constant_adversary(garbage)),
        };
        let corrupt = self.corrupt.clone();
        let mut ys_result = disseminate(
            &mut self.net,
            &self.tree,
            &corrupt,
            &{
                let payload = ys_payload.clone();
                let corrupt = corrupt.clone();
                move |member: PartyId| (!corrupt.contains(&member)).then(|| payload.clone())
            },
            adv.as_mut(),
        );
        // Crash-recovery churn: a party offline while (y, s) travels the
        // tree receives nothing here — it also signs nothing in step 4 and
        // resyncs from the step 7–8 certificate spread once it rejoins.
        for p in self.net.offline_set() {
            ys_result.per_party[p.index()] = None;
        }
        self.snap("3:disseminate-(y,s)");

        // ---- Step 4: sign per virtual identity, submit to leaf committees. ----
        // Streaming leaf-major pass: one leaf's signatures are produced,
        // filtered, and folded into the leaf aggregate before the next
        // leaf's exist, so peak signature storage is one committee's worth
        // instead of all `total_slots` at once. Seats inside a leaf are
        // ordered (honest before corrupt, then by owner and slot) to
        // reproduce the exact aggregation input order of the party-major
        // formulation; metrics charges commute, so for them only the
        // multiset per step matters.
        let evil_payload = wire::encode_msg(&ValueSeed {
            epoch,
            value: vec![9u8; value.len().max(1)],
            seed: Digest::ZERO,
        });
        let byzantine = self.config.profile == AdversaryProfile::Byzantine;
        let signable: Vec<bool> = (0..n)
            .map(|i| {
                !corrupt.contains(&PartyId(i as u64))
                    && ys_result.per_party[i]
                        .as_ref()
                        .is_some_and(|b| wire::decode_msg::<ValueSeed>(b).is_ok())
            })
            .collect();
        let mut evil_entries: Vec<(usize, u64, S::Signature)> = Vec::new();
        let mut leaf_honest: Vec<Option<S::Signature>> = Vec::with_capacity(params.leaf_count);
        // (input_bytes, out_len) per leaf: the step-5 aggregation charges,
        // deferred so they land after the step-4 snapshot boundary exactly
        // as in the two-pass formulation.
        let mut leaf_charges: Vec<(usize, usize)> = Vec::with_capacity(params.leaf_count);
        for leaf in 0..params.leaf_count {
            let range = self.tree.leaf_range(leaf);
            let mut seats: Vec<(bool, usize, u64)> = range
                .clone()
                .map(|slot| {
                    let (owner, _) = self.slot_sk[slot as usize];
                    (corrupt.contains(&PartyId(owner as u64)), owner, slot)
                })
                .collect();
            seats.sort_unstable();
            let committee = dedup_committee(self.tree.committee(0, leaf));
            let honest_members: Vec<PartyId> = committee
                .iter()
                .filter(|p| !corrupt.contains(p))
                .copied()
                .collect();
            let mut sigs: Vec<S::Signature> = Vec::new();
            for &(is_corrupt, owner, slot) in &seats {
                let (owner_ck, j) = self.slot_sk[slot as usize];
                debug_assert_eq!(owner_ck, owner);
                let p = PartyId(owner as u64);
                if is_corrupt {
                    if !byzantine {
                        continue;
                    }
                    let Ok(handle) = self.signing_key(p, j) else {
                        continue; // Sampled policy: key never materialized
                    };
                    if let Some(sig) =
                        self.scheme
                            .sign_epoch(&self.pp, slot, handle.key(), epoch, &evil_payload)
                    {
                        evil_entries.push((owner, slot, sig.clone()));
                        sigs.push(sig);
                    }
                    continue;
                }
                if !signable[owner] {
                    continue; // isolated or malformed payload: signs nothing
                }
                let my_payload = ys_result.per_party[owner]
                    .clone()
                    .expect("signable implies payload");
                let Ok(handle) = self.signing_key(p, j) else {
                    continue; // Sampled policy: off-path vote is lost regardless
                };
                let Some(sig) =
                    self.scheme
                        .sign_epoch(&self.pp, slot, handle.key(), epoch, &my_payload)
                else {
                    continue; // sortition loser (OWF scheme)
                };
                let len = self.scheme.signature_len(&sig);
                for &r in &committee {
                    if r == p {
                        continue;
                    }
                    self.net
                        .metrics_mut()
                        .record_send_tagged(p, r, len, tag::SIG_SUBMIT);
                    self.net
                        .metrics_mut()
                        .record_receive_tagged(r, p, len, tag::SIG_SUBMIT);
                }
                sigs.push(sig);
            }
            // Step 5a for this leaf: all honest leaf members hold the same
            // majority-exchanged signature set, aggregated iff the honest
            // members form the f_aggr-sig quorum.
            let filtered: Vec<S::Signature> = sigs
                .into_iter()
                .filter(|sig| {
                    self.scheme.min_index(sig) == self.scheme.max_index(sig)
                        && range.contains(&self.scheme.min_index(sig))
                })
                .collect();
            let input_bytes: usize = filtered.iter().map(|s| self.scheme.signature_len(s)).sum();
            let agg = f_aggr_sig_uniform(
                self.scheme,
                &self.pp,
                &self.keyboard,
                &ys_payload,
                committee.len(),
                honest_members.len(),
                &filtered,
            );
            let out_len = agg
                .as_ref()
                .map(|a| self.scheme.signature_len(a))
                .unwrap_or(0);
            leaf_charges.push((input_bytes, out_len));
            leaf_honest.push(agg);
        }
        // Restore the party-major order the corrupt signing loop used to
        // produce, so the colluding aggregate below is bit-identical.
        evil_entries.sort_unstable_by_key(|&(owner, slot, _)| (owner, slot));
        let evil_sigs: Vec<S::Signature> =
            evil_entries.into_iter().map(|(_, _, sig)| sig).collect();
        self.net.bump_round();
        self.snap("4:sign-and-submit");

        // ---- Step 5: robust redundant-path aggregation up the tree. ----
        // Every node's aggregate ascends via its full committee; parents
        // vote per child over the redundant copies (DESIGN.md §4b), so a
        // node contributes as long as corrupted members stay a strict
        // minority of its distinct committee — the 1/3 goodness threshold
        // only matters for the classical analysis now.
        for (leaf, &(input_bytes, out_len)) in leaf_charges.iter().enumerate() {
            let committee = dedup_committee(self.tree.committee(0, leaf));
            let honest_members: Vec<PartyId> = committee
                .iter()
                .filter(|p| !corrupt.contains(p))
                .copied()
                .collect();
            let bytes_map: BTreeMap<PartyId, usize> =
                committee.iter().map(|&m| (m, input_bytes)).collect();
            charge_aggr_round(&mut self.net, &honest_members, &bytes_map, out_len);
        }
        // All leaves aggregated in parallel: one exchange + MPC round pair.
        self.net.bump_round();
        self.net.bump_round();

        // The colluding copy corrupted members vote for at every node: an
        // aggregate over the adversary's divergent message. It can win the
        // vote at a majority-corrupted node, but aggregate1's validation
        // drops it at the next honest combine — withholding in disguise.
        let evil_copy: Option<S::Signature> = if evil_sigs.is_empty() {
            None
        } else {
            self.scheme
                .aggregate(&self.pp, &self.keyboard, &evil_payload, &evil_sigs)
        };

        let scheme = self.scheme;
        let pp = &self.pp;
        let keyboard = &self.keyboard;
        let tree = &self.tree;
        let corrupt_ref = &corrupt;
        let payload_ref = &ys_payload;
        let outcome = ascend(
            &mut self.net,
            tree,
            corrupt_ref,
            leaf_honest,
            |net, level, node, winners| {
                let committee = dedup_committee(tree.committee(level, node));
                let honest_members: Vec<PartyId> = committee
                    .iter()
                    .filter(|p| !corrupt_ref.contains(p))
                    .copied()
                    .collect();
                let mut children_sigs: Vec<S::Signature> = Vec::new();
                for (i, child) in tree.children(level, node).enumerate() {
                    let Some(sig) = winners[i].clone() else {
                        continue;
                    };
                    let child_range = tree.node_range(level - 1, child);
                    if child_range.contains(&scheme.min_index(&sig))
                        && child_range.contains(&scheme.max_index(&sig))
                    {
                        children_sigs.push(sig);
                    }
                }
                let input_bytes: usize =
                    children_sigs.iter().map(|s| scheme.signature_len(s)).sum();
                let agg = f_aggr_sig_uniform(
                    scheme,
                    pp,
                    keyboard,
                    payload_ref,
                    committee.len(),
                    honest_members.len(),
                    &children_sigs,
                );
                let out_len = agg.as_ref().map(|a| scheme.signature_len(a)).unwrap_or(0);
                let bytes_map: BTreeMap<PartyId, usize> =
                    committee.iter().map(|&m| (m, input_bytes)).collect();
                charge_aggr_round(net, &honest_members, &bytes_map, out_len);
                agg
            },
            |_, _, _| evil_copy.clone(),
            |sig| scheme.signature_len(sig),
            tag::AGGR_SHARE,
        );
        let sigma_root = outcome.root_value;
        let certificate_len = sigma_root.as_ref().map(|s| self.scheme.signature_len(s));
        self.snap("5:tree-aggregation");

        // ---- Step 6: disseminate (value, s, σ_root). ----
        let triple_payload = sigma_root.as_ref().map(|sig| {
            wire::encode_msg(&Certificate {
                epoch,
                value: value.clone(),
                seed: s,
                sig: encode_to_vec(sig),
            })
        });
        let mut triple_result = triple_payload.as_ref().map(|payload| {
            let mut adv: Box<pba_aetree::fae::AdversaryFn<'static>> = match self.config.profile {
                AdversaryProfile::Passive => Box::new(honest_adversary()),
                AdversaryProfile::Byzantine => {
                    Box::new(constant_adversary(vec![0xbb; payload.len()]))
                }
            };
            disseminate(
                &mut self.net,
                &self.tree,
                &corrupt,
                &{
                    let payload = payload.clone();
                    let corrupt = corrupt.clone();
                    move |member: PartyId| (!corrupt.contains(&member)).then(|| payload.clone())
                },
                adv.as_mut(),
            )
        });
        // Fresh offline set: the tick advanced since step 3, so a party
        // that rejoined in between participates here normally.
        if let Some(result) = triple_result.as_mut() {
            for p in self.net.offline_set() {
                result.per_party[p.index()] = None;
            }
        }
        self.snap("6:disseminate-certificate");

        // ---- Steps 7–8: PRF spread and output. ----
        let subset_size = params.committee_size.min(n.saturating_sub(1)).max(1);
        let mut outputs: Vec<Option<Vec<u8>>> = vec![None; n];
        let scheme = self.scheme;
        let pp = &self.pp;
        let keyboard = &self.keyboard;
        let verify_triple = |bytes: &[u8]| -> Option<Vec<u8>> {
            let cert = wire::decode_msg::<Certificate>(bytes).ok()?;
            if cert.epoch != epoch {
                return None; // cross-epoch replay
            }
            let sig: S::Signature = decode_from_slice(&cert.sig).ok()?;
            let signed = wire::encode_msg(&ValueSeed {
                epoch: cert.epoch,
                value: cert.value.clone(),
                seed: cert.seed,
            });
            scheme
                .verify(pp, keyboard, &signed, &sig)
                .then_some(cert.value)
        };

        if let Some(result) = &triple_result {
            let offline = self.net.offline_set();
            for &p in &self.honest {
                if offline.contains(&p) {
                    continue; // down: cannot produce an output this epoch
                }
                if let Some(bytes) = &result.per_party[p.index()] {
                    if let Some(v_out) = verify_triple(bytes) {
                        outputs[p.index()] = Some(v_out);
                    }
                }
            }
            for &p in &self.honest {
                if offline.contains(&p) {
                    continue; // down: sends nothing into the spread
                }
                let Some(bytes) = &result.per_party[p.index()] else {
                    continue;
                };
                let Ok(cert) = wire::decode_msg::<Certificate>(bytes) else {
                    continue;
                };
                let prf = SubsetPrf::new(cert.seed, n as u64, subset_size);
                for j in prf.eval(p.0) {
                    let receiver = PartyId(j);
                    self.net.metrics_mut().record_send_tagged(
                        p,
                        receiver,
                        bytes.len(),
                        tag::SPREAD,
                    );
                    if corrupt.contains(&receiver) || offline.contains(&receiver) {
                        continue; // corrupt ignores; offline expires unread
                    }
                    // Receiver-side dynamic filter (j ∈ F_s(i) holds by
                    // construction of the sender's target set; the receiver
                    // recomputes it from the message's own seed), then full
                    // SRDS verification.
                    self.net.metrics_mut().record_receive_tagged(
                        receiver,
                        p,
                        bytes.len(),
                        tag::SPREAD,
                    );
                    if outputs[receiver.index()].is_none() {
                        if let Some(v_out) = verify_triple(bytes) {
                            outputs[receiver.index()] = Some(v_out);
                        }
                    }
                }
            }
            self.net.bump_round();
        }
        self.snap("7-8:prf-spread+output");
        // Retain the encoded certificate for the next instance's chained
        // validation (None when σ_root never formed — nothing to chain).
        self.last_certificate = triple_payload;

        BytesRoundOutcome {
            value,
            outputs,
            certificate_len,
        }
    }

    /// Reserves the current epoch's one-time signing slot against the
    /// establishment's leaf budget. Schemes without a bounded epoch
    /// capacity (sortition) carry no budget and always succeed; an epoch
    /// whose slot is already reserved (an open [`Instance`], or a retry
    /// after a failed committee phase) is a no-op.
    fn reserve_epoch(&mut self) -> Result<(), ProtocolError> {
        let Some(budget) = &mut self.budget else {
            return Ok(());
        };
        if budget.consumed() > self.epoch {
            return Ok(());
        }
        match budget.reserve(1) {
            Ok(_) => Ok(()),
            Err(e) => Err(ProtocolError::KeyBudget {
                error: KeyError::BudgetExhausted {
                    instance: self.epoch,
                    capacity: e.capacity,
                },
            }),
        }
    }

    /// One full certified round: `f_ba` + `f_ct` + certify-and-spread.
    ///
    /// # Panics
    ///
    /// Panics if either committee sub-protocol fails or the signing
    /// budget is spent; use [`Session::try_certified_round`] for a
    /// fallible variant.
    pub fn certified_round(&mut self, committee_inputs: &BTreeMap<PartyId, u8>) -> RoundOutcome {
        if let Err(e) = self.reserve_epoch() {
            panic!("{e}");
        }
        let y = self.committee_ba(committee_inputs);
        let s = self.committee_coin();
        self.snap("2:committee-ba+coin");
        self.certify_and_spread(y, s)
    }

    /// Fallible certified round: any committee-phase failure — including
    /// an exhausted one-time signing budget
    /// ([`ProtocolError::KeyBudget`]) — is returned as a
    /// [`ProtocolError`] instead of panicking, leaving the session
    /// reusable (metrics intact, epoch advanced only on success).
    pub fn try_certified_round(
        &mut self,
        committee_inputs: &BTreeMap<PartyId, u8>,
    ) -> Result<RoundOutcome, ProtocolError> {
        self.reserve_epoch()?;
        let y = self.try_committee_ba(committee_inputs)?;
        let s = self.try_committee_coin()?;
        self.snap("2:committee-ba+coin");
        Ok(self.certify_and_spread(y, s))
    }

    /// Robust fan-in of every party's input for the committee
    /// sub-protocols: inputs ascend the tree over redundant committee
    /// paths ([`pba_aetree::robust::robust_input_fanin`]) and each supreme
    /// committee member adopts the value it computed over the redundant
    /// paths, falling back to its own local input when the ascent produced
    /// no strict-majority value (the safe default — a jammed fan-in never
    /// substitutes an adversarial value).
    pub fn robust_committee_inputs(&mut self, inputs: &[u8]) -> BTreeMap<PartyId, u8> {
        assert_eq!(inputs.len(), self.config.n, "one input per party");
        let corrupt_value = match self.config.profile {
            AdversaryProfile::Passive => None,
            AdversaryProfile::Byzantine => Some(0xaa),
        };
        let corrupt = self.corrupt.clone();
        let outcome =
            robust_input_fanin(&mut self.net, &self.tree, &corrupt, inputs, corrupt_value);
        let root_level = self.tree.height() - 1;
        let ascended = outcome.honest_values[root_level][0];
        self.supreme_committee()
            .iter()
            .map(|&p| (p, ascended.unwrap_or(inputs[p.index()])))
            .collect()
    }

    /// Multi-value analogue of [`Service::robust_committee_inputs`]: each
    /// party's ℓ-byte value rides the redundant-path ascent as a whole
    /// (framed as [`MvInput`], charged under [`tag::MV_INPUT`]); whole
    /// values are voted at every node, so an ascended winner is always
    /// some party's actual input, never a byte-wise chimera. Supreme
    /// committee members adopt the winner, falling back to their own
    /// input when no strict majority formed.
    pub fn robust_committee_values(&mut self, inputs: &[Vec<u8>]) -> BTreeMap<PartyId, Vec<u8>> {
        assert_eq!(inputs.len(), self.config.n, "one input value per party");
        let width = inputs.iter().map(Vec::len).max().unwrap_or(0);
        let corrupt_value = match self.config.profile {
            AdversaryProfile::Passive => None,
            AdversaryProfile::Byzantine => Some(vec![0xaa; width]),
        };
        let corrupt = self.corrupt.clone();
        let epoch = self.epoch;
        let outcome = robust_input_fanin_with(
            &mut self.net,
            &self.tree,
            &corrupt,
            inputs,
            corrupt_value,
            |v: &Vec<u8>| {
                wire::encode_msg(&MvInput {
                    epoch,
                    value: v.clone(),
                })
                .len()
            },
            tag::MV_INPUT,
        );
        let root_level = self.tree.height() - 1;
        let ascended = outcome.honest_values[root_level][0].clone();
        self.supreme_committee()
            .iter()
            .map(|&p| {
                (
                    p,
                    ascended
                        .clone()
                        .unwrap_or_else(|| inputs[p.index()].clone()),
                )
            })
            .collect()
    }

    /// Multi-value `f_ba`: the supreme committee agrees on an ℓ-byte
    /// value by per-byte composition — one phase-king instance per byte
    /// position over the same committee (byte `0` runs chained under the
    /// pipelined driver when a predecessor certificate is pending). A
    /// leader-value design would trade these rounds for validation
    /// complexity; composition keeps every byte under the same proven
    /// agreement engine.
    pub fn try_committee_ba_bytes(
        &mut self,
        committee_values: &BTreeMap<PartyId, Vec<u8>>,
        width: usize,
    ) -> Result<Vec<u8>, ProtocolError> {
        let mut value = Vec::with_capacity(width);
        for pos in 0..width {
            let byte_inputs: BTreeMap<PartyId, u8> = committee_values
                .iter()
                .map(|(&p, v)| (p, v.get(pos).copied().unwrap_or(0)))
                .collect();
            let byte = if pos == 0 {
                self.try_committee_ba_chained(&byte_inputs)?
            } else {
                self.try_committee_ba(&byte_inputs)?
            };
            value.push(byte);
        }
        Ok(value)
    }

    /// The honest parties' unanimous input value, when one exists — the
    /// reference for the validity verdict.
    fn unanimous_value(&self, inputs: &[Vec<u8>]) -> Option<Vec<u8>> {
        let honest_inputs: BTreeSet<&Vec<u8>> =
            self.honest.iter().map(|p| &inputs[p.index()]).collect();
        (honest_inputs.len() == 1)
            .then(|| (*honest_inputs.iter().next().expect("nonempty")).clone())
    }

    /// Agreement/validity/stall verdicts over one instance's outputs —
    /// the multi-value mirror of the single-shot verdict logic.
    fn judge_values(
        &self,
        unanimous_input: Option<Vec<u8>>,
        round: BytesRoundOutcome,
    ) -> Result<MultiValueOutcome, ProtocolError> {
        let honest_outputs: Vec<Option<&Vec<u8>>> = self
            .honest
            .iter()
            .map(|p| round.outputs[p.index()].as_ref())
            .collect();
        let delivered: BTreeSet<&Vec<u8>> = honest_outputs.iter().copied().flatten().collect();
        if honest_outputs.iter().any(|o| o.is_none()) && delivered.len() <= 1 {
            return Err(ProtocolError::Stalled {
                phase: ProtocolPhase::Certification,
                delivered: honest_outputs.iter().flatten().count(),
                honest: honest_outputs.len(),
            });
        }
        let agreement = honest_outputs.iter().all(|o| o.is_some())
            && honest_outputs.windows(2).all(|w| w[0] == w[1]);
        let output = if agreement {
            honest_outputs.first().copied().flatten()
        } else {
            None
        };
        let validity = match &unanimous_input {
            Some(v) => output == Some(v),
            None => true,
        };
        Ok(MultiValueOutcome {
            value: round.value,
            outputs: round.outputs,
            agreement,
            validity,
            certificate_len: round.certificate_len,
        })
    }

    /// Honest bytes sent so far (the cumulative figure step snapshots and
    /// instance baselines are deltas of).
    fn honest_bytes_sent(&self) -> u64 {
        self.honest
            .iter()
            .map(|&p| self.net.metrics().party(p).bytes_sent)
            .sum()
    }

    /// Captures the cumulative counters an instance's report will later
    /// be a delta of.
    fn instance_baseline(&self) -> InstanceBaseline {
        InstanceBaseline {
            index: self.epoch,
            bytes: self.honest_bytes_sent(),
            rounds: self.net.metrics().rounds(),
            steps_len: self.steps.len(),
            cache: self.scheme.cache_stats(),
        }
    }

    /// Settles an instance: computes its accounting slice against the
    /// baseline and records it at the service level.
    fn finish_instance(
        &mut self,
        baseline: InstanceBaseline,
        overlapped_rounds: u64,
    ) -> InstanceReport {
        let cache = match (self.scheme.cache_stats(), baseline.cache) {
            (Some(now), Some(then)) => Some(CacheStats {
                hits: now.hits - then.hits,
                misses: now.misses - then.misses,
                warm_hits: now.warm_hits - then.warm_hits,
            }),
            _ => None,
        };
        let report = InstanceReport {
            index: baseline.index,
            total_bytes: self.honest_bytes_sent() - baseline.bytes,
            rounds: self.net.metrics().rounds() - baseline.rounds,
            overlapped_rounds,
            steps: self.steps[baseline.steps_len..].to_vec(),
            cache,
            transcript_digest: self.net.transcript().and_then(|t| t.last().copied()),
        };
        self.instance_reports.push(report.clone());
        report
    }

    /// Inline chained validation of the previous instance's certificate:
    /// every honest supreme-committee member re-verifies it (the scheme's
    /// certificate cache collapses the repeats into warm hits). Used by
    /// sequentially-driven instances; the pipelined driver spreads the
    /// same validations across the successor's committee rounds instead
    /// ([`Service::try_committee_ba_chained`]). Returns the number of
    /// member-validations that accepted.
    pub fn validate_chained_certificate(&self) -> usize {
        let Some(bytes) = &self.last_certificate else {
            return 0;
        };
        let Ok(cert) = wire::decode_msg::<Certificate>(bytes) else {
            return 0;
        };
        let Ok(sig) = decode_from_slice::<S::Signature>(&cert.sig) else {
            return 0;
        };
        let signed = wire::encode_msg(&ValueSeed {
            epoch: cert.epoch,
            value: cert.value,
            seed: cert.seed,
        });
        self.supreme_committee()
            .iter()
            .filter(|p| !self.corrupt.contains(p))
            .filter(|_| self.scheme.verify(&self.pp, &self.keyboard, &signed, &sig))
            .count()
    }

    /// Opens the next agreement instance on this service: reserves one
    /// slot of the establishment's one-time signing budget (structured
    /// [`ProtocolError::KeyBudget`] when spent — never a panic, and the
    /// service stays usable for inspection), advances the scheme's
    /// certificate-cache generation, and chain-validates the previous
    /// instance's certificate.
    pub fn begin_instance(&mut self) -> Result<Instance<'_, 'a, S>, ProtocolError> {
        let baseline = self.instance_baseline();
        self.reserve_epoch()?;
        if self.epoch > 0 {
            self.scheme.advance_cache_generation();
            self.validate_chained_certificate();
        }
        Ok(Instance {
            service: self,
            baseline,
        })
    }

    /// Fan-in + committee agreement + coin for one instance's single-byte
    /// inputs; certification follows via [`Service::certify_bytes`] (or is
    /// deferred by the pipelined driver).
    fn agree_bits(
        &mut self,
        inputs: &[u8],
        chained: bool,
    ) -> Result<(Vec<u8>, Digest), ProtocolError> {
        let committee_inputs = self.robust_committee_inputs(inputs);
        let y = if chained {
            self.try_committee_ba_chained(&committee_inputs)?
        } else {
            self.try_committee_ba(&committee_inputs)?
        };
        let s = self.try_committee_coin()?;
        self.snap("2:committee-ba+coin");
        Ok((vec![y], s))
    }

    /// Fan-in + committee agreement + coin over ℓ-byte values. Width-1
    /// instances take the plain bit path (identical charges to a
    /// single-shot run); wider values fan in whole ([`MvInput`]) and
    /// agree per byte.
    fn agree_values(
        &mut self,
        inputs: &[Vec<u8>],
        chained: bool,
    ) -> Result<(Vec<u8>, Digest), ProtocolError> {
        let width = inputs.iter().map(Vec::len).max().unwrap_or(0);
        if width <= 1 {
            let bits: Vec<u8> = inputs
                .iter()
                .map(|v| v.first().copied().unwrap_or(0))
                .collect();
            return self.agree_bits(&bits, chained);
        }
        let committee_values = self.robust_committee_values(inputs);
        let value = if chained {
            self.try_committee_ba_bytes(&committee_values, width)?
        } else {
            // Sequentially-driven instances validated the chain at
            // begin_instance; run every byte under the plain engine.
            let mut value = Vec::with_capacity(width);
            for pos in 0..width {
                let byte_inputs: BTreeMap<PartyId, u8> = committee_values
                    .iter()
                    .map(|(&p, v)| (p, v.get(pos).copied().unwrap_or(0)))
                    .collect();
                value.push(self.try_committee_ba(&byte_inputs)?);
            }
            value
        };
        let s = self.try_committee_coin()?;
        self.snap("2:committee-ba+coin");
        Ok((value, s))
    }

    /// One full instance body: agree, certify, judge.
    fn run_instance_values(
        &mut self,
        inputs: &[Vec<u8>],
    ) -> Result<MultiValueOutcome, ProtocolError> {
        let (value, s) = self.agree_values(inputs, false)?;
        let round = self.certify_bytes(value, s);
        let unanimous = self.unanimous_value(inputs);
        self.judge_values(unanimous, round)
    }

    /// Replaces the committee fault-injection strategy between instances —
    /// the mid-stream chaos knob. The next instance's committee phases
    /// build their adversary from the new spec; timing-fault axes are
    /// establishment-scoped and are not re-armed here.
    pub fn set_chaos(&mut self, spec: Option<StrategySpec>) {
        self.config.chaos = spec;
    }

    /// Per-instance accounting slices recorded so far (the service-level
    /// aggregation of every settled instance's metrics).
    pub fn instance_reports(&self) -> &[InstanceReport] {
        &self.instance_reports
    }

    /// The establishment's one-time signing budget, when the scheme's
    /// epoch capacity is bounded (MSS-backed schemes; `None` for
    /// sortition).
    pub fn budget(&self) -> Option<&LeafBudget> {
        self.budget.as_ref()
    }

    /// Streams `k` agreement instances over this one establishment — the
    /// BA-as-a-service entry point behind the decisions/sec benchmark.
    /// `instances[i][p]` is party `p`'s input value for instance `i`
    /// (width 1 = bit agreement; wider values run multi-value BA).
    ///
    /// Sequential mode runs instances back-to-back via
    /// [`Service::begin_instance`]. Pipelined mode defers instance `i`'s
    /// certification (steps 3–8) into instance `i+1`'s committee phase:
    /// its rounds run under an overlap window and only the remainder the
    /// successor's committee rounds could not cover advances the clock.
    /// Charges always land in full — pipelining hides round latency,
    /// never bytes.
    ///
    /// An instance that fails leaves the stream running (its verdict is
    /// recorded and the epoch slot is retried), except
    /// [`ProtocolError::KeyBudget`], which ends the stream with the
    /// failing instance named.
    ///
    /// # Panics
    ///
    /// Panics if any instance's input slice length differs from `n`, or
    /// if pipelined mode is combined with timing-fault chaos (the overlap
    /// window and the delay queue are mutually exclusive).
    pub fn try_run_stream(
        &mut self,
        instances: &[Vec<Vec<u8>>],
        mode: StreamMode,
    ) -> StreamOutcome {
        let rounds_start = self.net.metrics().rounds();
        let mut outcomes: Vec<InstanceOutcome> = Vec::new();
        let mut overlapped_total = 0u64;
        match mode {
            StreamMode::Sequential => {
                for inputs in instances {
                    match self.begin_instance() {
                        Ok(instance) => {
                            let index = instance.index();
                            let (result, report) = instance.run_values(inputs);
                            outcomes.push(InstanceOutcome {
                                index,
                                result,
                                report,
                            });
                        }
                        Err(reason) => {
                            outcomes.push(self.refused_instance(reason));
                            break;
                        }
                    }
                }
            }
            StreamMode::Pipelined => {
                assert!(
                    self.net.timing().is_none(),
                    "pipelined streaming is mutually exclusive with timing-fault chaos"
                );
                // Instance i's agreed (value, seed) parked while its
                // certification waits for instance i+1's committee phase.
                struct Deferred {
                    index: u64,
                    value: Vec<u8>,
                    seed: Digest,
                    unanimous: Option<Vec<u8>>,
                    baseline: InstanceBaseline,
                }
                let mut pending: Option<Deferred> = None;
                for (i, inputs) in instances.iter().enumerate() {
                    // Settle the predecessor: its certification runs now,
                    // inside an overlap window. The rounds it would cost
                    // are absorbed; whatever this instance's committee
                    // phase cannot cover re-surfaces below.
                    let mut absorbed = 0u64;
                    if let Some(d) = pending.take() {
                        self.net.begin_round_overlap();
                        let round = self.certify_bytes_at(d.index, d.value, d.seed);
                        absorbed = self.net.end_round_overlap();
                        let result = self.judge_values(d.unanimous, round);
                        let report = self.finish_instance(d.baseline, absorbed);
                        outcomes.push(InstanceOutcome {
                            index: d.index,
                            result,
                            report,
                        });
                    }
                    let baseline = self.instance_baseline();
                    if let Err(reason) = self.reserve_epoch() {
                        // No successor phase will cover the absorbed
                        // rounds: they land on the clock after all.
                        for _ in 0..absorbed {
                            self.net.bump_round();
                        }
                        outcomes.push(self.refused_instance(reason));
                        break;
                    }
                    if self.epoch > 0 {
                        self.scheme.advance_cache_generation();
                    }
                    let rounds_before = self.net.metrics().rounds();
                    let agreed = self.agree_values(inputs, true);
                    // Rounds the committee phase actually ran bound how
                    // much deferred certification it can hide; the
                    // uncovered remainder advances the clock for real.
                    let covered = self.net.metrics().rounds() - rounds_before;
                    let hidden = absorbed.min(covered);
                    overlapped_total += hidden;
                    for _ in 0..absorbed.saturating_sub(covered) {
                        self.net.bump_round();
                    }
                    match agreed {
                        Ok((value, s)) => {
                            let unanimous = self.unanimous_value(inputs);
                            let index = self.epoch;
                            if i + 1 < instances.len() {
                                pending = Some(Deferred {
                                    index,
                                    value,
                                    seed: s,
                                    unanimous,
                                    baseline,
                                });
                                // The successor's committee phase keys off
                                // its own epoch while this certification
                                // is still pending.
                                self.epoch += 1;
                            } else {
                                let round = self.certify_bytes(value, s);
                                let result = self.judge_values(unanimous, round);
                                let report = self.finish_instance(baseline, 0);
                                outcomes.push(InstanceOutcome {
                                    index,
                                    result,
                                    report,
                                });
                            }
                        }
                        Err(reason) => {
                            let index = self.epoch;
                            let report = self.finish_instance(baseline, 0);
                            outcomes.push(InstanceOutcome {
                                index,
                                result: Err(reason),
                                report,
                            });
                        }
                    }
                }
                // A trailing deferred instance (the loop ended on a failed
                // successor) settles unoverlapped.
                if let Some(d) = pending.take() {
                    let round = self.certify_bytes_at(d.index, d.value, d.seed);
                    let result = self.judge_values(d.unanimous, round);
                    let report = self.finish_instance(d.baseline, 0);
                    outcomes.push(InstanceOutcome {
                        index: d.index,
                        result,
                        report,
                    });
                }
            }
        }
        let decisions = outcomes
            .iter()
            .filter(|o| o.result.as_ref().map(|m| m.agreement).unwrap_or(false))
            .count();
        StreamOutcome {
            instances: outcomes,
            decisions,
            total_rounds: self.net.metrics().rounds() - rounds_start,
            overlapped_rounds: overlapped_total,
        }
    }

    /// The zero-work outcome of an instance the signing budget refused.
    fn refused_instance(&self, reason: ProtocolError) -> InstanceOutcome {
        InstanceOutcome {
            index: self.epoch,
            result: Err(reason),
            report: InstanceReport {
                index: self.epoch,
                total_bytes: 0,
                rounds: 0,
                overlapped_rounds: 0,
                steps: Vec::new(),
                cache: None,
                transcript_digest: self.net.transcript().and_then(|t| t.last().copied()),
            },
        }
    }
}

/// Cumulative-counter snapshot an [`InstanceReport`] is a delta of.
#[derive(Clone, Copy, Debug)]
struct InstanceBaseline {
    index: u64,
    bytes: u64,
    rounds: u64,
    steps_len: usize,
    cache: Option<CacheStats>,
}

/// One agreement instance borrowing an established [`Service`]: opened by
/// [`Service::begin_instance`] (which draws the instance's one-time
/// signing slot and chains to its predecessor), consumed by one `run_*`
/// call that returns the verdicts together with the instance-scoped
/// accounting slice.
pub struct Instance<'s, 'a, S: Srds> {
    service: &'s mut Service<'a, S>,
    baseline: InstanceBaseline,
}

impl<'s, 'a, S> Instance<'s, 'a, S>
where
    S: Srds,
    S::Signature: Encode + Decode,
{
    /// The instance's index (the service epoch it runs as).
    pub fn index(&self) -> u64 {
        self.baseline.index
    }

    /// Read access to the underlying service.
    pub fn service(&self) -> &Service<'a, S> {
        self.service
    }

    /// Runs the instance over single-byte inputs: fan-in, committee BA and
    /// coin, certification, spread — bit-compatible with the single-shot
    /// [`try_run_ba`] body — and settles it.
    pub fn run_bits(
        self,
        inputs: &[u8],
    ) -> (Result<MultiValueOutcome, ProtocolError>, InstanceReport) {
        let values: Vec<Vec<u8>> = inputs.iter().map(|&b| vec![b]).collect();
        self.run_values(&values)
    }

    /// Runs the instance over ℓ-byte values (whole-value fan-in, per-byte
    /// committee agreement, one certificate) and settles it.
    pub fn run_values(
        self,
        inputs: &[Vec<u8>],
    ) -> (Result<MultiValueOutcome, ProtocolError>, InstanceReport) {
        let Instance { service, baseline } = self;
        let result = service.run_instance_values(inputs);
        let report = service.finish_instance(baseline, 0);
        (result, report)
    }
}

/// Runs `π_ba` with the given SRDS scheme.
///
/// `inputs[i]` is party `i`'s input bit (values other than 0/1 are allowed
/// but the protocol agrees on a `u8`).
///
/// # Panics
///
/// Panics if `inputs.len() != config.n` or the configuration is internally
/// inconsistent (e.g. more corruptions than parties). Use [`try_run_ba`]
/// for a variant that reports such failures as [`RunOutcome::Failed`].
pub fn run_ba<S>(scheme: &S, config: &BaConfig, inputs: &[u8]) -> BaOutcome
where
    S: Srds,
    S::Signature: Encode + Decode,
{
    match try_run_ba(scheme, config, inputs) {
        RunOutcome::Completed(out) => out,
        RunOutcome::Failed { phase, reason } => panic!("pi_ba failed in {phase}: {reason}"),
    }
}

/// Runs `π_ba`, reporting protocol-level failures (corruption past the
/// design bound, committee timeouts, honest divergence) as structured
/// [`RunOutcome::Failed`] values instead of panicking — the entry point
/// for fault-injection harnesses that deliberately exceed fault bounds.
///
/// # Panics
///
/// Panics only on caller errors (`inputs.len() != config.n`).
pub fn try_run_ba<S>(scheme: &S, config: &BaConfig, inputs: &[u8]) -> RunOutcome
where
    S: Srds,
    S::Signature: Encode + Decode,
{
    assert_eq!(inputs.len(), config.n, "one input per party");
    let mut session = match Session::try_establish(scheme, config) {
        Ok(session) => session,
        Err(reason) => {
            return RunOutcome::Failed {
                phase: reason.phase(),
                reason,
            }
        }
    };
    run_established(&mut session, inputs)
}

/// One backend's view of a full `π_ba` run over a [`Transport`]: the
/// protocol outcome plus the evidence the differential oracle compares —
/// the chained per-exchange delivery transcript and the backend's socket
/// statistics.
#[derive(Clone, Debug)]
pub struct TransportRun {
    /// Protocol-level outcome (success or structured failure).
    pub outcome: RunOutcome,
    /// Chained delivery-transcript digests, one per `take_staged` batch.
    /// Entry `i` commits the entire delivery history through batch `i`,
    /// so equality of the final entries proves byte-identical delivery.
    pub transcript: Vec<Digest>,
    /// Socket-layer counters (zero for the in-process backend).
    pub stats: pba_net::SocketStats,
    /// The backend's [`Transport::kind`] label.
    pub kind: &'static str,
}

impl TransportRun {
    /// The final transcript digest — the single value two backends must
    /// agree on for their runs to be byte-identical.
    pub fn final_digest(&self) -> Option<Digest> {
        self.transcript.last().copied()
    }
}

/// Runs `π_ba` end-to-end over an explicit delivery backend and returns
/// the outcome together with the delivery transcript — the entry point
/// for differential sim-vs-socket testing. Pass
/// [`pba_net::LocalTransport`] to produce the in-process oracle run and a
/// [`pba_net::TcpTransport`] for a socket-backed replica; identical
/// `(seed, config, inputs)` must yield identical transcripts.
///
/// # Panics
///
/// Panics on caller errors (`inputs.len() != config.n`) or if the config
/// also carries timing-fault chaos (mutually exclusive with a transport).
pub fn try_run_ba_over<S>(
    scheme: &S,
    config: &BaConfig,
    inputs: &[u8],
    transport: Box<dyn Transport>,
) -> TransportRun
where
    S: Srds,
    S::Signature: Encode + Decode,
{
    assert_eq!(inputs.len(), config.n, "one input per party");
    let mut session = match Session::try_establish_over(scheme, config, Some(transport)) {
        Ok(session) => session,
        Err(reason) => {
            return TransportRun {
                outcome: RunOutcome::Failed {
                    phase: reason.phase(),
                    reason,
                },
                transcript: Vec::new(),
                stats: pba_net::SocketStats::default(),
                kind: "failed-establishment",
            }
        }
    };
    let outcome = run_established(&mut session, inputs);
    let transcript = session
        .net
        .transcript()
        .map(|t| t.to_vec())
        .unwrap_or_default();
    let (kind, stats) = match session.net.transport() {
        Some(t) => (t.kind(), t.stats()),
        None => ("none", pba_net::SocketStats::default()),
    };
    TransportRun {
        outcome,
        transcript,
        stats,
        kind,
    }
}

/// Shared post-establishment body of [`try_run_ba`] /
/// [`try_run_ba_over`]: one certified round plus the
/// agreement/validity verdicts.
fn run_established<S>(session: &mut Session<'_, S>, inputs: &[u8]) -> RunOutcome
where
    S: Srds,
    S::Signature: Encode + Decode,
{
    // Certification/coin fan-in rides the robust redundant paths: the
    // supreme committee's inputs arrive through the same byzantine-robust
    // routing as the certificates.
    let committee_inputs = session.robust_committee_inputs(inputs);
    let round = match session.try_certified_round(&committee_inputs) {
        Ok(round) => round,
        Err(reason) => {
            return RunOutcome::Failed {
                phase: reason.phase(),
                reason,
            }
        }
    };

    let honest_outputs: Vec<Option<u8>> = session
        .honest()
        .iter()
        .map(|p| round.outputs[p.index()])
        .collect();
    // Undelivered outputs with no conflicting delivered values are a
    // liveness stall, not a safety breach: report them as a structured
    // certification failure. Conflicting delivered values fall through to
    // `Completed` with `agreement = false` so harnesses see the safety
    // violation itself.
    let delivered: BTreeSet<u8> = honest_outputs.iter().flatten().copied().collect();
    if honest_outputs.iter().any(|o| o.is_none()) && delivered.len() <= 1 {
        let reason = ProtocolError::Stalled {
            phase: ProtocolPhase::Certification,
            delivered: honest_outputs.iter().flatten().count(),
            honest: honest_outputs.len(),
        };
        return RunOutcome::Failed {
            phase: reason.phase(),
            reason,
        };
    }
    let agreement = honest_outputs.iter().all(|o| o.is_some())
        && honest_outputs.windows(2).all(|w| w[0] == w[1]);
    let output = if agreement {
        honest_outputs.first().copied().flatten()
    } else {
        None
    };
    let unanimous_input: Option<u8> = {
        let honest_inputs: BTreeSet<u8> =
            session.honest().iter().map(|p| inputs[p.index()]).collect();
        (honest_inputs.len() == 1).then(|| *honest_inputs.iter().next().expect("nonempty"))
    };
    let validity = match unanimous_input {
        Some(b) => output == Some(b),
        None => true,
    };

    RunOutcome::Completed(BaOutcome {
        outputs: round.outputs,
        agreement,
        output,
        validity,
        report: session.report(),
        steps: session.steps().to_vec(),
        breakdown: session.breakdown(),
        tags_conserved: session.tags_conserve_totals(),
        corrupt: session.corrupt().clone(),
        certificate_len: round.certificate_len,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pba_srds::owf::OwfSrds;
    use pba_srds::snark::SnarkSrds;

    #[test]
    fn honest_run_owf_agrees() {
        let scheme = OwfSrds::with_defaults();
        let config = BaConfig::honest(96, b"ba-owf-1");
        let inputs = vec![1u8; 96];
        let out = run_ba(&scheme, &config, &inputs);
        assert!(out.agreement, "no agreement: {:?}", out.outputs);
        assert_eq!(out.output, Some(1));
        assert!(out.validity);
        assert!(out.certificate_len.is_some());
    }

    #[test]
    fn honest_run_snark_agrees() {
        let scheme = SnarkSrds::with_defaults();
        let config = BaConfig::honest(64, b"ba-snark-1");
        let inputs = vec![0u8; 64];
        let out = run_ba(&scheme, &config, &inputs);
        assert!(out.agreement, "no agreement: {:?}", out.outputs);
        assert_eq!(out.output, Some(0));
        // SNARK certificates are tiny.
        assert!(out.certificate_len.unwrap() < 250);
    }

    #[test]
    fn mixed_inputs_still_agree() {
        let scheme = SnarkSrds::with_defaults();
        let config = BaConfig::honest(64, b"ba-mixed");
        let inputs: Vec<u8> = (0..64).map(|i| (i % 2) as u8).collect();
        let out = run_ba(&scheme, &config, &inputs);
        assert!(out.agreement);
        assert!(out.validity); // vacuous without unanimity
    }

    #[test]
    fn byzantine_corruption_owf() {
        let scheme = OwfSrds::with_defaults();
        let config = BaConfig::byzantine(128, 12, b"ba-byz-owf");
        let inputs = vec![1u8; 128];
        let out = run_ba(&scheme, &config, &inputs);
        assert!(out.agreement, "agreement broken: {:?}", out.outputs);
        assert_eq!(out.output, Some(1), "validity broken");
    }

    #[test]
    fn byzantine_corruption_snark() {
        let scheme = SnarkSrds::with_defaults();
        let config = BaConfig::byzantine(96, 9, b"ba-byz-snark");
        let inputs = vec![0u8; 96];
        let out = run_ba(&scheme, &config, &inputs);
        assert!(out.agreement, "agreement broken: {:?}", out.outputs);
        assert_eq!(out.output, Some(0));
    }

    #[test]
    fn per_party_cost_stays_balanced() {
        let scheme = SnarkSrds::with_defaults();
        let config = BaConfig::honest(128, b"ba-balance");
        let inputs = vec![1u8; 128];
        let out = run_ba(&scheme, &config, &inputs);
        let avg = out.report.total_bytes as f64 / 128.0;
        assert!(
            (out.report.max_bytes_per_party as f64) < 60.0 * avg,
            "imbalance: max {} vs avg {avg}",
            out.report.max_bytes_per_party
        );
    }

    #[test]
    fn step_reports_cover_all_steps() {
        let scheme = OwfSrds::with_defaults();
        let config = BaConfig::honest(64, b"ba-steps");
        let out = run_ba(&scheme, &config, &[1u8; 64]);
        assert_eq!(out.steps.len(), 7);
        assert!(out.steps.iter().any(|s| s.label.starts_with("5:")));
    }

    #[test]
    fn interactive_establishment_agrees() {
        let scheme = SnarkSrds::with_defaults();
        let mut config = BaConfig::byzantine(96, 9, b"ba-interactive");
        config.establishment = Establishment::Interactive;
        let out = run_ba(&scheme, &config, &[1u8; 96]);
        assert!(out.agreement, "interactive establishment broke agreement");
        assert_eq!(out.output, Some(1));
        // The election really cost something.
        assert!(out.steps[0].total_bytes > 0);
    }

    #[test]
    fn over_bound_corruption_fails_gracefully() {
        let scheme = OwfSrds::with_defaults();
        let mut config = BaConfig::byzantine(48, 16, b"ba-over-bound");
        config.corruption = CorruptionPlan::Random { t: 16 }; // 3*16 = 48
        let out = try_run_ba(&scheme, &config, &[1u8; 48]);
        match out {
            RunOutcome::Failed { phase, reason } => {
                assert_eq!(phase, ProtocolPhase::Establishment);
                assert_eq!(
                    reason,
                    ProtocolError::CorruptionBound { corrupt: 16, n: 48 }
                );
            }
            RunOutcome::Completed(_) => panic!("over-bound run completed"),
        }
    }

    #[test]
    fn try_run_matches_run_on_honest_config() {
        let scheme = OwfSrds::with_defaults();
        let config = BaConfig::honest(64, b"ba-try-honest");
        let out = try_run_ba(&scheme, &config, &[1u8; 64]);
        let completed = out.completed().expect("honest run must complete");
        assert!(completed.agreement);
        assert_eq!(completed.output, Some(1));
    }

    #[test]
    fn chaos_strategy_hook_drives_committee_adversary() {
        use pba_net::faults::StrategySpec;
        let scheme = SnarkSrds::with_defaults();
        let mut config = BaConfig::byzantine(96, 9, b"ba-chaos-hook");
        config.chaos = Some(StrategySpec::Equivocate);
        let out = try_run_ba(&scheme, &config, &[1u8; 96]);
        // Below the fault bound the protocol must still complete and agree
        // under pure equivocation.
        let completed = out.completed().expect("equivocation under bound");
        assert!(completed.agreement, "outputs: {:?}", completed.outputs);
        assert_eq!(completed.output, Some(1));
    }

    #[test]
    fn protocol_error_display_is_structured() {
        let e = ProtocolError::Timeout {
            phase: ProtocolPhase::CommitteeBa,
            rounds: 40,
        };
        assert_eq!(e.phase(), ProtocolPhase::CommitteeBa);
        assert_eq!(
            e.to_string(),
            "committee-ba hit its round limit after 40 rounds"
        );
        let d = ProtocolError::Disagreement {
            phase: ProtocolPhase::CommitteeCoin,
            distinct: 3,
        };
        assert_eq!(
            d.to_string(),
            "committee-coin ended with 3 distinct honest values"
        );
        let s = ProtocolError::Stalled {
            phase: ProtocolPhase::Certification,
            delivered: 7,
            honest: 40,
        };
        assert_eq!(s.phase(), ProtocolPhase::Certification);
        assert_eq!(
            s.to_string(),
            "certification stalled: only 7 of 40 honest parties obtained output"
        );
    }

    #[test]
    fn session_supports_multiple_rounds() {
        // Three rounds need a 3-slot one-time budget: height 2 gives 4.
        // (The default height-1 scheme would refuse round 3 with a
        // structured KeyBudget error — see the budget test below.)
        let scheme = SnarkSrds::new(pba_srds::snark::SnarkSrdsConfig {
            mss_bits: 32,
            mss_height: 2,
        });
        let config = BaConfig::honest(64, b"ba-multi");
        let mut session = Session::establish(&scheme, &config);
        let committee = session.supreme_committee();
        for round in 0..3u8 {
            let inputs: BTreeMap<PartyId, u8> = committee.iter().map(|&p| (p, round % 2)).collect();
            let out = session.certified_round(&inputs);
            assert_eq!(out.y, round % 2);
            for &p in session.honest() {
                assert_eq!(out.outputs[p.index()], Some(round % 2), "round {round}");
            }
        }
        let budget = session.budget().expect("snark scheme has a bounded budget");
        assert_eq!(budget.capacity(), 4);
        assert_eq!(budget.consumed(), 3);
    }

    #[test]
    fn exhausted_budget_is_a_structured_error_not_a_panic() {
        // Default height 1 = capacity 2: the third certified round must be
        // refused with the failing instance named, and the session must
        // remain usable for inspection.
        let scheme = SnarkSrds::with_defaults();
        let config = BaConfig::honest(64, b"ba-budget");
        let mut session = Session::establish(&scheme, &config);
        let committee = session.supreme_committee();
        let inputs: BTreeMap<PartyId, u8> = committee.iter().map(|&p| (p, 1)).collect();
        for _ in 0..2 {
            let out = session.try_certified_round(&inputs).expect("within budget");
            assert_eq!(out.y, 1);
        }
        let err = session
            .try_certified_round(&inputs)
            .expect_err("third round exceeds the capacity-2 budget");
        assert_eq!(
            err,
            ProtocolError::KeyBudget {
                error: KeyError::BudgetExhausted {
                    instance: 2,
                    capacity: 2,
                },
            }
        );
        assert_eq!(err.phase(), ProtocolPhase::Certification);
        assert!(err.to_string().contains("instance 2"), "{err}");
        assert_eq!(session.budget().map(|b| b.remaining()), Some(0));
    }
}
