//! The comparison protocols of Table 1.
//!
//! * [`all_to_all_ba`] — Byzantine agreement over the complete graph
//!   (phase-king among all `n` parties): `Θ(n·t)` bits per party,
//!   `Θ(n²·t)` total. Run with real state machines at small `n`; above
//!   [`REAL_SIMULATION_LIMIT`] the *exact deterministic traffic* of the
//!   honest execution is metered analytically (validated against the real
//!   run by tests — see `metered_matches_real`).
//! * [`sqrt_sampling_boost`] — the King–Saia'09-style boost from
//!   almost-everywhere to everywhere agreement: every party polls
//!   `Θ̃(√n)` random peers and takes the majority, giving `Θ̃(√n)` bits per
//!   party — the bound the paper breaks.
//! * The BGT'13-style multisignature boost is `π_ba` instantiated with
//!   [`pba_srds::multisig::MultisigSrds`] (the Θ(n) certificate makes the
//!   per-party cost linear); see the bench harness.

use crate::phase_king::{max_faults, rounds_for, PhaseKing, PkMsg};
use pba_crypto::codec::{CodecError, Decode, Encode, Reader};
use pba_crypto::mss::{MssKeyPair, MssParams, MssVerificationKey};
use pba_crypto::prg::Prg;
use pba_net::runner::{run_phase, SilentAdversary};
use pba_net::wire::{self, step, tag};
use pba_net::{Machine, Network, PartyId, Report, WireMsg};
use std::collections::{BTreeMap, BTreeSet};

/// Above this size, [`all_to_all_ba`] switches from real state machines to
/// exact analytic metering of the same execution.
pub const REAL_SIMULATION_LIMIT: usize = 150;

/// Wire size of one phase-king message, measured off the real typed
/// encoding (`{tag, step}` header + variant byte + value) so the analytic
/// meter can never drift from what [`all_to_all_ba_real`] charges.
fn pk_msg_bytes() -> u64 {
    wire::encoded_msg_len(&PkMsg::Value(0u8)) as u64
}

/// Runs (or meters) all-to-all phase-king BA with unanimous honest inputs
/// and `t_silent` crash-faulty parties, returning the communication report.
///
/// For `n ≤ REAL_SIMULATION_LIMIT` the protocol executes for real; above,
/// the deterministic honest-case traffic of the same implementation is
/// charged directly (every round of every phase: one `Value` and one
/// `Propose` broadcast per honest party, plus the king's broadcast).
pub fn all_to_all_ba(n: usize, t_silent: usize, input: u8) -> Report {
    assert!(3 * t_silent < n, "faults must stay below n/3");
    if n <= REAL_SIMULATION_LIMIT {
        let (report, outputs) = all_to_all_ba_real(n, t_silent, input);
        debug_assert!(outputs.iter().flatten().all(|&o| o == input));
        report
    } else {
        all_to_all_ba_metered(n, t_silent)
    }
}

/// The real execution (exposed for validation tests).
pub fn all_to_all_ba_real(n: usize, t_silent: usize, input: u8) -> (Report, Vec<Option<u8>>) {
    let committee: Vec<PartyId> = (0..n as u64).map(PartyId).collect();
    let corrupt: BTreeSet<PartyId> = committee[n - t_silent..].iter().copied().collect();
    let mut net = Network::new(n);
    let mut machines: BTreeMap<PartyId, PhaseKing<u8>> = committee
        .iter()
        .filter(|p| !corrupt.contains(p))
        .map(|&p| (p, PhaseKing::new(committee.clone(), p, input)))
        .collect();
    let mut adversary = SilentAdversary::new(corrupt.clone());
    {
        let mut erased: BTreeMap<PartyId, Box<dyn Machine + Send + '_>> = machines
            .iter_mut()
            .map(|(&id, m)| (id, Box::new(m) as Box<dyn Machine + Send + '_>))
            .collect();
        let outcome = run_phase(&mut net, &mut erased, &mut adversary, rounds_for(n) + 6);
        assert!(outcome.completed, "all-to-all BA did not terminate");
    }
    let honest: Vec<PartyId> = committee
        .iter()
        .filter(|p| !corrupt.contains(p))
        .copied()
        .collect();
    let outputs = committee
        .iter()
        .map(|id| machines.get(id).and_then(|m| m.output().copied()))
        .collect();
    (net.metrics().report_for(honest), outputs)
}

/// Exact analytic metering of the honest-case traffic of
/// [`all_to_all_ba_real`] with `t_silent` silent faults.
fn all_to_all_ba_metered(n: usize, t_silent: usize) -> Report {
    let pk_msg_bytes = pk_msg_bytes();
    let t = max_faults(n);
    let phases = (t + 1) as u64;
    let honest = (n - t_silent) as u64;
    let peers = (n - 1) as u64;
    // Per phase, every honest party broadcasts Value then Propose
    // (unanimous inputs ⇒ the (n − t)-quorum always exists); the phase's
    // king additionally broadcasts King. Receivers process one message per
    // honest peer in each of those rounds.
    let per_party_sent_base = phases * 2 * peers * pk_msg_bytes;
    // A king (honest, in the first t + 1 positions — silent parties are
    // placed last) sends one extra broadcast in its phase.
    let king_extra = peers * pk_msg_bytes;
    // Received: value+propose from every honest peer per phase, plus the
    // king message (when the king is another party).
    let per_party_recv = phases * 2 * (honest - 1) * pk_msg_bytes + phases * pk_msg_bytes;

    let max_bytes_sent = per_party_sent_base + king_extra;
    let total_bytes = honest * per_party_sent_base + phases.min(honest) * king_extra;
    let rounds = 3 * phases + 1;
    // The maximal party is a king: it sends one extra broadcast but does
    // not process its own phase's king message (one fewer receive).
    let max_combined = max_bytes_sent + per_party_recv - pk_msg_bytes;
    Report {
        parties: honest,
        max_bytes_per_party: max_combined,
        max_bytes_sent,
        total_bytes,
        total_msgs: total_bytes / pk_msg_bytes,
        max_msgs_per_party: max_combined / pk_msg_bytes,
        max_locality: peers,
        rounds,
    }
}

/// Outcome of the committee-flood baseline.
#[derive(Clone, Debug)]
pub struct CommitteeFloodOutcome {
    /// Communication report over honest parties.
    pub report: Report,
    /// Fraction of honest parties that accepted the committee's value.
    pub correct_fraction: f64,
    /// The committee size used.
    pub committee_size: usize,
    /// Max-over-avg sent-bytes ratio — the *imbalance* the paper's
    /// introduction criticizes (Θ(n/polylog) for this family).
    pub imbalance: f64,
}

/// The "amortized Õ(1), unbalanced" family of Table 1 (CM'19 / ACD⁺'19 /
/// CKS'20-style): a sortition committee of `polylog(n)` parties agrees and
/// then **each member sends the signed result directly to all `n`
/// parties**. Receivers accept on a majority of valid committee
/// signatures.
///
/// Average per-party cost is `Õ(1)` (most parties only receive `polylog`
/// signatures) but committee members each send `Θ(n · poly(κ))` bits — the
/// "central parties" imbalance that motivates the paper's question. The
/// measured `max/avg` ratio in the output exhibits it directly.
pub fn committee_flood_ba(n: usize, t: usize, input: u8, seed: &[u8]) -> CommitteeFloodOutcome {
    assert!(3 * t < n, "faults must stay below n/3");
    let mut prg = Prg::from_seed_label(seed, "committee-flood");
    let corrupt: BTreeSet<PartyId> = prg
        .sample_distinct(n as u64, t)
        .into_iter()
        .map(PartyId)
        .collect();

    // Trusted PKI (the family's standard assumption).
    let params = MssParams::new(16, 1);
    let keys: Vec<MssKeyPair> = (0..n)
        .map(|i| MssKeyPair::generate(&params, &mut prg.child("key", i as u64)))
        .collect();
    let vks: Vec<MssVerificationKey> = keys.iter().map(|k| k.verification_key()).collect();

    // Sortition committee from post-corruption randomness.
    let logn = (usize::BITS - n.saturating_sub(1).leading_zeros()) as usize;
    let c = (3 * logn).min(n);
    let committee: Vec<PartyId> = prg
        .sample_distinct(n as u64, c)
        .into_iter()
        .map(PartyId)
        .collect();

    let mut net = Network::new(n);

    // Committee BA (phase-king among the committee, real messages).
    let mut machines: BTreeMap<PartyId, PhaseKing<u8>> = committee
        .iter()
        .filter(|p| !corrupt.contains(p))
        .map(|&p| (p, PhaseKing::new(committee.clone(), p, input)))
        .collect();
    let mut adversary = SilentAdversary::new(corrupt.iter().copied());
    {
        let mut erased: BTreeMap<PartyId, Box<dyn Machine + Send + '_>> = machines
            .iter_mut()
            .map(|(&id, m)| (id, Box::new(m) as Box<dyn Machine + Send + '_>))
            .collect();
        run_phase(&mut net, &mut erased, &mut adversary, rounds_for(c) + 6);
    }
    let y = machines
        .values()
        .find_map(|m| m.output().copied())
        .expect("committee decided");

    // The flood: every honest committee member signs y and sends it to all.
    // Receivers verify and count; accept at a committee majority.
    let payload = [y];
    let mut sig_count = vec![0usize; n];
    for &member in &committee {
        if corrupt.contains(&member) {
            continue; // worst case for delivery: corrupt members withhold
        }
        let sig = keys[member.index()].sign_with_index(&payload, 0);
        let len = 1 + pba_crypto::codec::encode_to_vec(&sig).len();
        for i in 0..n as u64 {
            let receiver = PartyId(i);
            if receiver == member {
                sig_count[receiver.index()] += 1;
                continue;
            }
            net.metrics_mut().record_send(member, receiver, len);
            // Receivers must process committee signatures to count them.
            net.metrics_mut().record_receive(receiver, member, len);
            if params.verify(&vks[member.index()], &payload, &sig) {
                sig_count[receiver.index()] += 1;
            }
        }
    }
    net.bump_round();

    let honest: Vec<PartyId> = (0..n as u64)
        .map(PartyId)
        .filter(|p| !corrupt.contains(p))
        .collect();
    let accepted = honest
        .iter()
        .filter(|p| 2 * sig_count[p.index()] > c)
        .count();
    let report = net.metrics().report_for(honest.iter().copied());
    let avg_sent = report.total_bytes as f64 / report.parties.max(1) as f64;
    CommitteeFloodOutcome {
        imbalance: report.max_bytes_sent as f64 / avg_sent.max(1.0),
        correct_fraction: accepted as f64 / honest.len() as f64,
        committee_size: c,
        report,
    }
}

/// A √n-boost poll: "what value do you hold?", carrying the sampler's
/// nonce so responses can be matched to queries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SampleQuery {
    /// Fresh per-query nonce.
    pub nonce: u64,
}

impl Encode for SampleQuery {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.nonce.encode(buf);
    }
}

impl Decode for SampleQuery {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(SampleQuery {
            nonce: u64::decode(r)?,
        })
    }
}

impl WireMsg for SampleQuery {
    const TAG: u8 = tag::SAMPLE_QUERY;
    const STEP: u8 = step::NONE;
}

/// A √n-boost response: the responder's held value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SampleResponse {
    /// The value the responder holds.
    pub value: u8,
}

impl Encode for SampleResponse {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.value.encode(buf);
    }
}

impl Decode for SampleResponse {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(SampleResponse {
            value: u8::decode(r)?,
        })
    }
}

impl WireMsg for SampleResponse {
    const TAG: u8 = tag::SAMPLE_RESPONSE;
    const STEP: u8 = step::NONE;
}

/// Outcome of the √n-sampling boost.
#[derive(Clone, Debug)]
pub struct SqrtBoostOutcome {
    /// Communication report over honest parties.
    pub report: Report,
    /// Fraction of honest parties that decided the correct value.
    pub correct_fraction: f64,
    /// The sample size each party used.
    pub sample_size: usize,
}

/// The King–Saia'09-style boost: starting from almost-everywhere agreement
/// (a `1 − ae_gap` fraction of honest parties hold `value`), every party
/// polls `⌈sample_factor · √n⌉` random peers and outputs the majority
/// response. Corrupt responders always lie; honest non-holders answer
/// nothing.
///
/// Per-party communication is `Θ̃(√n)` — the barrier the paper's title
/// refers to.
pub fn sqrt_sampling_boost(
    n: usize,
    t: usize,
    ae_gap: f64,
    sample_factor: f64,
    seed: &[u8],
) -> SqrtBoostOutcome {
    assert!(3 * t < n, "faults must stay below n/3");
    let mut prg = Prg::from_seed_label(seed, "sqrt-boost");
    let corrupt: BTreeSet<PartyId> = prg
        .sample_distinct(n as u64, t)
        .into_iter()
        .map(PartyId)
        .collect();
    // Almost-everywhere agreement state: honest parties hold the value
    // except an ae_gap fraction of stragglers.
    let value = 1u8;
    let holders: Vec<bool> = (0..n as u64)
        .map(|i| {
            let p = PartyId(i);
            !corrupt.contains(&p) && !prg.gen_bool_ratio((ae_gap * 1000.0) as u64, 1000)
        })
        .collect();

    let sample_size = ((n as f64).sqrt() * sample_factor).ceil() as usize;
    let sample_size = sample_size.clamp(1, n - 1);
    let mut net = Network::new(n);
    // Real typed wire sizes: header + nonce, header + value.
    let query_bytes = wire::encoded_msg_len(&SampleQuery { nonce: 0 });
    let response_bytes = wire::encoded_msg_len(&SampleResponse { value: 0 });

    let mut correct = 0usize;
    let mut honest_count = 0usize;
    for i in 0..n as u64 {
        let p = PartyId(i);
        if corrupt.contains(&p) {
            continue;
        }
        honest_count += 1;
        let mut votes = 0i64;
        let mut responses = 0usize;
        for target in prg.sample_distinct(n as u64, sample_size) {
            let q = PartyId(target);
            net.metrics_mut()
                .record_send_tagged(p, q, query_bytes, tag::SAMPLE_QUERY);
            net.metrics_mut()
                .record_receive_tagged(q, p, query_bytes, tag::SAMPLE_QUERY);
            let answer: Option<u8> = if corrupt.contains(&q) {
                Some(value ^ 1) // corrupt responders lie
            } else if holders[q.index()] {
                Some(value)
            } else {
                None // honest straggler: no answer
            };
            if let Some(a) = answer {
                net.metrics_mut()
                    .record_send_tagged(q, p, response_bytes, tag::SAMPLE_RESPONSE);
                net.metrics_mut()
                    .record_receive_tagged(p, q, response_bytes, tag::SAMPLE_RESPONSE);
                responses += 1;
                votes += if a == value { 1 } else { -1 };
            }
        }
        let decided = if responses > 0 && votes > 0 {
            Some(value)
        } else {
            None
        };
        if decided == Some(value) || holders[p.index()] {
            correct += 1;
        }
    }
    // All queries happen in one round, all responses in the next.
    net.bump_round();
    net.bump_round();

    let honest: Vec<PartyId> = (0..n as u64)
        .map(PartyId)
        .filter(|p| !corrupt.contains(p))
        .collect();
    SqrtBoostOutcome {
        report: net.metrics().report_for(honest),
        correct_fraction: correct as f64 / honest_count as f64,
        sample_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_all_to_all_agrees() {
        let (report, outputs) = all_to_all_ba_real(16, 3, 1);
        assert!(outputs.iter().take(13).all(|&o| o == Some(1)));
        assert!(report.total_bytes > 0);
    }

    #[test]
    fn metered_matches_real() {
        for (n, t_silent) in [(16usize, 0usize), (31, 4), (40, 8)] {
            let (real, _) = all_to_all_ba_real(n, t_silent, 1);
            let metered = all_to_all_ba_metered(n, t_silent);
            assert_eq!(
                metered.max_bytes_sent, real.max_bytes_sent,
                "n={n} t={t_silent} sent mismatch"
            );
            assert_eq!(
                metered.total_bytes, real.total_bytes,
                "n={n} t={t_silent} total mismatch"
            );
            assert_eq!(
                metered.max_bytes_per_party, real.max_bytes_per_party,
                "n={n} t={t_silent} max-per-party mismatch"
            );
        }
    }

    #[test]
    fn all_to_all_scales_quadratically_total() {
        let r64 = all_to_all_ba(64, 0, 1);
        let r256 = all_to_all_ba(256, 0, 1);
        // total ~ n^2 * t ~ n^3: growing n by 4 grows total by ≥ 16.
        assert!(r256.total_bytes > 16 * r64.total_bytes);
        // per-party ~ n * t ~ n^2: grows by ≥ 8.
        assert!(r256.max_bytes_per_party > 8 * r64.max_bytes_per_party);
    }

    #[test]
    fn sqrt_boost_correct_and_sqrt_scaling() {
        let o256 = sqrt_sampling_boost(256, 25, 0.05, 3.0, b"sq1");
        assert!(o256.correct_fraction > 0.99, "{}", o256.correct_fraction);
        let o4096 = sqrt_sampling_boost(4096, 400, 0.05, 3.0, b"sq2");
        assert!(o4096.correct_fraction > 0.99);
        // √n scaling: n grew 16×, per-party cost should grow ~4× (within slop).
        let ratio =
            o4096.report.max_bytes_per_party as f64 / o256.report.max_bytes_per_party as f64;
        assert!(
            (2.0..8.0).contains(&ratio),
            "per-party ratio {ratio} not ~sqrt"
        );
    }

    #[test]
    fn committee_flood_accepts_and_is_unbalanced() {
        let out = committee_flood_ba(512, 51, 1, b"cf1");
        assert!(out.correct_fraction > 0.99, "{}", out.correct_fraction);
        // The imbalance is the point: committee members send Θ(n·poly(κ))
        // while the average party sends almost nothing.
        assert!(
            out.imbalance > 5.0,
            "expected strong imbalance, got {}",
            out.imbalance
        );
    }

    #[test]
    fn committee_flood_average_is_flat_max_is_linear() {
        let small = committee_flood_ba(128, 12, 1, b"cf2");
        let large = committee_flood_ba(512, 51, 1, b"cf2");
        // Max sent grows ~linearly with n (the flood); note receivers' cost
        // grows only with the committee size.
        assert!(
            large.report.max_bytes_sent > 3 * small.report.max_bytes_sent,
            "max {} vs {}",
            small.report.max_bytes_sent,
            large.report.max_bytes_sent
        );
        let avg_small = small.report.total_bytes / small.report.parties;
        let avg_large = large.report.total_bytes / large.report.parties;
        // Average grows far slower than 4x.
        assert!(avg_large < 3 * avg_small, "avg {avg_small} -> {avg_large}");
    }

    #[test]
    fn sqrt_boost_sample_size_is_sqrt() {
        let o = sqrt_sampling_boost(1024, 100, 0.05, 2.0, b"sq3");
        assert_eq!(o.sample_size, 64);
    }

    #[test]
    #[should_panic(expected = "below n/3")]
    fn too_many_faults_rejected() {
        all_to_all_ba(9, 3, 1);
    }
}
