//! The MPC corollary (Corollary 1.2(2)): assuming (threshold) FHE, any
//! function `f : ({0,1}^ℓin)^n → {0,1}^ℓout` can be securely computed with
//! guaranteed output delivery and **total** communication
//! `n · polylog(n) · poly(κ) · (ℓin + ℓout)` bits.
//!
//! The construction rides the `π_ba` session infrastructure:
//!
//! 1. threshold-FHE keys are dealt to the supreme committee at setup
//!    (decryption threshold = majority — above the corrupt third, below
//!    the honest two-thirds);
//! 2. every party encrypts its input and submits the ciphertext to its
//!    leaf committees — `polylog` recipients of `ℓin + O(κ)` bytes;
//! 3. ciphertexts are **homomorphically merged up the tree**: each good
//!    node evaluates the union of its children's encrypted input maps
//!    (never seeing a plaintext); Byzantine-controlled bad nodes may drop
//!    their subtree — the inputs they lose are the protocol's `⊥` inputs,
//!    as in any guaranteed-output-delivery definition;
//! 4. the supreme committee evaluates `f` under encryption, exchanges
//!    decryption shares, and reconstructs the output;
//! 5. the output is delivered to everyone through the certified
//!    dissemination of Fig. 3 (steps 3–8) via
//!    [`crate::protocol::Session::certify_bytes`].
//!
//! Communication: step 2 is `n · polylog · ℓin`; step 3 sums to
//! `n · ℓin` ciphertext bytes per level across `polylog` copies and
//! `O(log n)` levels; step 5 is `n · polylog · ℓout` — matching the
//! corollary's bound. (Parties near the root carry more than `Õ(ℓin)` —
//! the corollary bounds *total*, not per-party, communication.)

use crate::protocol::{AdversaryProfile, BaConfig, Session};
use pba_crypto::codec::{decode_from_slice, encode_to_vec, Decode, Encode};
use pba_net::{PartyId, Report};
use pba_snark::fhe::{Ciphertext, FheSystem};
use pba_srds::traits::Srds;
use std::collections::BTreeMap;

/// Outcome of one MPC execution.
#[derive(Clone, Debug)]
pub struct MpcOutcome {
    /// The function output computed by the supreme committee.
    pub output: Vec<u8>,
    /// Per-party delivered outputs (`None` = no verified certificate).
    pub outputs: Vec<Option<Vec<u8>>>,
    /// How many parties' inputs reached the evaluation.
    pub inputs_included: usize,
    /// Honest-party communication report.
    pub report: Report,
    /// Certificate size for the output delivery.
    pub certificate_len: Option<usize>,
}

type InputMap = Vec<(u64, Vec<u8>)>; // sorted by party id

fn merge_maps(maps: &[Vec<u8>]) -> Vec<u8> {
    let mut merged: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    for encoded in maps {
        if let Ok(entries) = decode_from_slice::<InputMap>(encoded) {
            for (id, input) in entries {
                merged.entry(id).or_insert(input);
            }
        }
    }
    let out: InputMap = merged.into_iter().collect();
    encode_to_vec(&out)
}

/// Runs the FHE-based MPC over one `π_ba` session.
///
/// `inputs[i]` is party `i`'s private input; `f` receives the map of
/// included inputs (missing parties = `⊥`) and returns the public output.
///
/// # Panics
///
/// Panics if `inputs.len() != config.n` or if the supreme committee cannot
/// reach its decryption threshold (impossible below the fault bound).
pub fn run_mpc<S, F>(scheme: &S, config: &BaConfig, inputs: &[Vec<u8>], f: F) -> MpcOutcome
where
    S: Srds,
    S::Signature: Encode + Decode,
    F: Fn(&BTreeMap<u64, Vec<u8>>) -> Vec<u8>,
{
    assert_eq!(inputs.len(), config.n, "one input per party");
    let mut session = Session::establish(scheme, config);
    let supreme = session.supreme_committee();
    let corrupt = session.corrupt().clone();
    let tree = session.tree().clone();
    let params = *session.params();
    let analysis = session.analysis().clone();

    // 1. Threshold-FHE setup for the supreme committee (majority threshold:
    //    above the corrupt third, within the honest two-thirds).
    let mut fhe_seed = config.seed.clone();
    fhe_seed.extend_from_slice(b"/fhe");
    let fhe = FheSystem::setup(&fhe_seed, supreme.len(), supreme.len() / 2 + 1);

    // 2. Input submission: every party encrypts its (id, input) singleton
    //    map and sends the ciphertext to each of its leaf committees.
    let mut leaf_cts: Vec<Vec<Ciphertext>> = vec![Vec::new(); params.leaf_count];
    for i in 0..config.n as u64 {
        let p = PartyId(i);
        if corrupt.contains(&p) {
            if config.profile == AdversaryProfile::Byzantine {
                // Byzantine parties may submit arbitrary inputs — the
                // functionality computes over whatever they choose.
                let singleton: InputMap = vec![(i, vec![0xff; inputs[i as usize].len()])];
                let ct = fhe.encrypt(&encode_to_vec(&singleton));
                for leaf in tree.party_leaves(p) {
                    leaf_cts[leaf].push(ct.clone());
                }
            }
            continue;
        }
        let singleton: InputMap = vec![(i, inputs[i as usize].clone())];
        let ct = fhe.encrypt(&encode_to_vec(&singleton));
        for leaf in tree.party_leaves(p) {
            let recipients: std::collections::BTreeSet<PartyId> =
                tree.committee(0, leaf).iter().copied().collect();
            for &r in &recipients {
                if r != p {
                    session
                        .net
                        .metrics_mut()
                        .record_send(p, r, ct.encoded_len());
                    session
                        .net
                        .metrics_mut()
                        .record_receive(r, p, ct.encoded_len());
                }
            }
            leaf_cts[leaf].push(ct.clone());
        }
    }
    session.net.bump_round();

    // 3. Homomorphic merge up the tree (good nodes only — Byzantine bad
    //    nodes drop their subtree's inputs).
    let eval_merge = |fhe: &FheSystem, cts: &[Ciphertext]| -> Option<Ciphertext> {
        let valid: Vec<Ciphertext> = cts.iter().filter(|ct| fhe.validate(ct)).cloned().collect();
        if valid.is_empty() {
            return None;
        }
        Some(fhe.eval(&valid, merge_maps))
    };
    let node_alive = |level: usize, node: usize| -> bool {
        analysis.is_good(level, node) || config.profile == AdversaryProfile::Passive
    };

    let mut current: Vec<Option<Ciphertext>> = leaf_cts
        .iter()
        .enumerate()
        .map(|(leaf, cts)| node_alive(0, leaf).then(|| eval_merge(&fhe, cts)).flatten())
        .collect();
    for level in 1..params.height {
        let mut next = Vec::with_capacity(tree.nodes_at_level(level));
        for node in 0..tree.nodes_at_level(level) {
            let committee: std::collections::BTreeSet<PartyId> =
                tree.committee(level, node).iter().copied().collect();
            let mut children = Vec::new();
            for child in tree.children(level, node) {
                if let Some(ct) = &current[child] {
                    // Each honest child member forwards to each parent member.
                    let child_committee: std::collections::BTreeSet<PartyId> =
                        tree.committee(level - 1, child).iter().copied().collect();
                    for &sender in child_committee.iter().filter(|p| !corrupt.contains(p)) {
                        for &receiver in &committee {
                            if receiver != sender {
                                session.net.metrics_mut().record_send(
                                    sender,
                                    receiver,
                                    ct.encoded_len(),
                                );
                                session.net.metrics_mut().record_receive(
                                    receiver,
                                    sender,
                                    ct.encoded_len(),
                                );
                            }
                        }
                    }
                    children.push(ct.clone());
                }
            }
            next.push(
                node_alive(level, node)
                    .then(|| eval_merge(&fhe, &children))
                    .flatten(),
            );
        }
        session.net.bump_round();
        current = next;
    }
    let ct_root = current.pop().flatten().expect("root ciphertext");

    // 4. The supreme committee evaluates f under encryption and threshold-
    //    decrypts the output.
    let included: BTreeMap<u64, Vec<u8>> = {
        // (The committee never sees this map; we recompute it for reporting
        //  by decrypting through the threshold path below.)
        BTreeMap::new()
    };
    let _ = included;
    let ct_out = fhe.eval(std::slice::from_ref(&ct_root), |plains| {
        let entries: InputMap = decode_from_slice(&plains[0]).unwrap_or_default();
        let map: BTreeMap<u64, Vec<u8>> = entries.into_iter().collect();
        let out = f(&map);
        // Prepend the inclusion count for reporting.
        let mut framed = encode_to_vec(&(map.len() as u64));
        framed.extend_from_slice(&out);
        framed
    });

    // Share exchange within the committee (honest members only).
    let honest_members: Vec<PartyId> = supreme
        .iter()
        .filter(|p| !corrupt.contains(p))
        .copied()
        .collect();
    let mut shares = Vec::new();
    for (pos, &member) in supreme.iter().enumerate() {
        if corrupt.contains(&member) {
            continue; // Byzantine/silent members withhold shares
        }
        let share = fhe.partial_decrypt(pos, &ct_out).expect("valid ciphertext");
        for &peer in &honest_members {
            if peer != member {
                session
                    .net
                    .metrics_mut()
                    .record_send(member, peer, share.encoded_len());
                session
                    .net
                    .metrics_mut()
                    .record_receive(peer, member, share.encoded_len());
            }
        }
        shares.push(share);
    }
    session.net.bump_round();
    let framed = fhe
        .combine(&ct_out, &shares)
        .expect("threshold met by honest majority");
    let (inputs_included, output): (u64, Vec<u8>) = {
        let count: u64 = decode_from_slice(&framed[..8]).expect("count frame");
        (count, framed[8..].to_vec())
    };

    // 5. Certified delivery of the public output to everyone.
    let s = session.committee_coin();
    let delivered = session.certify_bytes(output.clone(), s);

    MpcOutcome {
        output,
        outputs: delivered.outputs,
        inputs_included: inputs_included as usize,
        report: session.report(),
        certificate_len: delivered.certificate_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pba_srds::snark::SnarkSrds;

    fn xor_all(map: &BTreeMap<u64, Vec<u8>>) -> Vec<u8> {
        let mut acc = vec![0u8; 4];
        for v in map.values() {
            for (a, b) in acc.iter_mut().zip(v) {
                *a ^= b;
            }
        }
        acc
    }

    #[test]
    fn honest_mpc_computes_xor() {
        let n = 64;
        let scheme = SnarkSrds::with_defaults();
        let config = BaConfig::honest(n, b"mpc-1");
        let inputs: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8, 1, 2, 3]).collect();
        let expected = {
            let map: BTreeMap<u64, Vec<u8>> = inputs
                .iter()
                .cloned()
                .enumerate()
                .map(|(i, v)| (i as u64, v))
                .collect();
            xor_all(&map)
        };
        let out = run_mpc(&scheme, &config, &inputs, xor_all);
        assert_eq!(out.inputs_included, n);
        assert_eq!(out.output, expected);
        // Every party received the certified output.
        for (i, o) in out.outputs.iter().enumerate() {
            assert_eq!(o.as_ref(), Some(&expected), "party {i}");
        }
    }

    #[test]
    fn byzantine_mpc_still_delivers() {
        let n = 96;
        let scheme = SnarkSrds::with_defaults();
        let config = BaConfig::byzantine(n, 9, b"mpc-2");
        let inputs: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 4]).collect();
        let out = run_mpc(&scheme, &config, &inputs, xor_all);
        // All honest parties get the same output...
        let corrupt = {
            // recompute corruption from the outcome's delivered slots
            (0..n).filter(|&i| out.outputs[i].is_none()).count()
        };
        assert!(corrupt <= 9, "honest parties missing output");
        let honest_values: std::collections::BTreeSet<Vec<u8>> =
            out.outputs.iter().flatten().cloned().collect();
        assert_eq!(honest_values.len(), 1);
        // ...and most inputs made it through the tree.
        assert!(out.inputs_included >= n - 2 * 9, "{}", out.inputs_included);
    }

    #[test]
    fn sum_function_with_larger_outputs() {
        let n = 64;
        let scheme = SnarkSrds::with_defaults();
        let config = BaConfig::honest(n, b"mpc-3");
        let inputs: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8]).collect();
        let sum_fn = |map: &BTreeMap<u64, Vec<u8>>| -> Vec<u8> {
            let total: u64 = map.values().map(|v| v[0] as u64).sum();
            total.to_le_bytes().to_vec()
        };
        let expected: u64 = (0..n as u64).sum();
        let out = run_mpc(&scheme, &config, &inputs, sum_fn);
        assert_eq!(out.output, expected.to_le_bytes().to_vec());
    }

    #[test]
    fn total_communication_scales_with_input_size() {
        let n = 64;
        let scheme = SnarkSrds::with_defaults();
        let run = |len: usize, seed: &[u8]| {
            let config = BaConfig::honest(n, seed);
            let inputs: Vec<Vec<u8>> = (0..n).map(|_| vec![7u8; len]).collect();
            run_mpc(&scheme, &config, &inputs, |m| {
                m.values().next().cloned().unwrap_or_default()
            })
            .report
            .total_bytes
        };
        let small = run(8, b"mpc-4a");
        let large = run(512, b"mpc-4b");
        // Total communication grows with ℓin but far less than 64x (the
        // polylog machinery dominates at small n).
        assert!(large > small);
        assert!(large < small * 64);
    }
}
