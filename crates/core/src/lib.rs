#![warn(missing_docs)]
//! # pba-core
//!
//! Balanced Byzantine agreement with polylog bits per party — the protocol
//! layer of the *Boyle–Cohen–Goel (PODC 2021)* reproduction:
//!
//! * [`phase_king`] — committee BA (`f_ba`, t < n/3);
//! * [`coin`] — committee coin tossing (`f_ct`, commit–echo–reveal);
//! * [`vss_coin`] — robust `f_ct` via Shamir deal/echo + Berlekamp–Welch
//!   error-corrected reconstruction (the Chor et al. instantiation);
//! * [`aggr`] — the signature-aggregation functionality (`f_aggr-sig`);
//! * [`protocol`] — `π_ba` (Fig. 3), generic over the SRDS scheme;
//! * [`baselines`] — the Table 1 comparison protocols (all-to-all
//!   phase-king, BGT'13-style multisignature boost, KS'09-style √n
//!   sampling);
//! * [`broadcast`] — the broadcast corollary (Cor. 1.2(1));
//! * [`lowerbound`] — the isolation attack behind Theorems 1.3/1.4;
//! * [`mpc`] — the FHE-based MPC corollary (Cor. 1.2(2));
//! * [`kssv`] — interactive tree establishment (tournament election);
//! * [`dolev_strong`] — the classic authenticated broadcast baseline.
pub mod aggr;
pub mod baselines;
pub mod broadcast;
pub mod coin;
pub mod dolev_strong;
pub mod kssv;
pub mod lowerbound;
pub mod mpc;
pub mod phase_king;
pub mod protocol;
pub mod vss_coin;

pub use broadcast::{run_broadcasts, BroadcastOutcome};
pub use protocol::{
    run_ba, try_run_ba, AdversaryProfile, BaConfig, BaOutcome, ProtocolError, ProtocolPhase,
    RunOutcome, Session,
};
