//! Dolev–Strong authenticated broadcast: the classic `t + 1`-round
//! signature-chain protocol, tolerating **any** number of corruptions
//! (`t < n`) given a PKI.
//!
//! Included as the canonical "authenticated baseline" next to the paper's
//! protocols: it shows what signatures alone buy (resilience) and what
//! they cost — `Θ(n²)` messages whose size *grows* with the round number,
//! versus the `Õ(1)`-balanced certified dissemination of `π_ba`.
//!
//! Protocol: the sender signs its value and sends it to everyone. A party
//! that, in round `r`, accepts a value carrying a chain of `r` distinct
//! valid signatures (starting with the sender's) appends its own signature
//! and relays to everyone. After `t + 1` rounds, honest parties output the
//! unique extracted value, or the default on equivocation.

use pba_crypto::codec::{CodecError, Decode, Encode, Reader};
use pba_crypto::mss::{MssKeyPair, MssParams, MssSignature, MssVerificationKey};
use pba_crypto::prg::Prg;
use pba_net::runner::{run_phase, Adversary, SilentAdversary};
use pba_net::wire::{step, tag};
use pba_net::{Ctx, Envelope, Machine, Network, PartyId, Report, WireMsg};
use std::collections::{BTreeMap, BTreeSet};

/// A signature-chain link: signer and signature bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainLink {
    /// The signer.
    pub signer: PartyId,
    /// Signature over `(value, signers-so-far)`.
    pub sig: MssSignature,
}

impl Encode for ChainLink {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.signer.encode(buf);
        self.sig.encode(buf);
    }
}

impl Decode for ChainLink {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(ChainLink {
            signer: PartyId::decode(r)?,
            sig: MssSignature::decode(r)?,
        })
    }
}

/// A Dolev–Strong relay message: the value and its signature chain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DsMessage {
    /// The broadcast value.
    pub value: u8,
    /// Signature chain, sender first.
    pub chain: Vec<ChainLink>,
}

impl Encode for DsMessage {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.value.encode(buf);
        self.chain.encode(buf);
    }
}

impl Decode for DsMessage {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(DsMessage {
            value: u8::decode(r)?,
            chain: Vec::<ChainLink>::decode(r)?,
        })
    }
}

impl WireMsg for DsMessage {
    const TAG: u8 = tag::DOLEV_STRONG;
    const STEP: u8 = step::NONE;
}

/// What a chain signature signs: the value plus the ordered signer prefix.
fn signed_payload(value: u8, signers: &[PartyId]) -> Vec<u8> {
    let mut buf = vec![value];
    for s in signers {
        buf.extend_from_slice(&s.0.to_le_bytes());
    }
    buf
}

/// Validates a chain: distinct signers, sender first, all signatures valid.
fn chain_valid(
    msg: &DsMessage,
    sender: PartyId,
    params: &MssParams,
    vks: &[MssVerificationKey],
) -> bool {
    if msg.chain.is_empty() || msg.chain[0].signer != sender {
        return false;
    }
    let mut seen = BTreeSet::new();
    for (i, link) in msg.chain.iter().enumerate() {
        if !seen.insert(link.signer) {
            return false;
        }
        let Some(vk) = vks.get(link.signer.index()) else {
            return false;
        };
        let signers: Vec<PartyId> = msg.chain[..i].iter().map(|l| l.signer).collect();
        if !params.verify(vk, &signed_payload(msg.value, &signers), &link.sig) {
            return false;
        }
    }
    true
}

/// The Dolev–Strong state machine for one party.
#[derive(Debug)]
pub struct DolevStrong {
    me: PartyId,
    n: usize,
    t: usize,
    sender: PartyId,
    sender_value: Option<u8>, // Some iff me == sender
    params: MssParams,
    vks: Vec<MssVerificationKey>,
    key: MssKeyPair,
    extracted: BTreeSet<u8>,
    decided: Option<u8>,
    done: bool,
}

impl DolevStrong {
    /// Creates the machine. `sender_value` is `Some` only for the sender.
    #[allow(clippy::too_many_arguments)] // protocol parameters; a builder would obscure the spec
    pub fn new(
        me: PartyId,
        n: usize,
        t: usize,
        sender: PartyId,
        sender_value: Option<u8>,
        params: MssParams,
        vks: Vec<MssVerificationKey>,
        key: MssKeyPair,
    ) -> Self {
        DolevStrong {
            me,
            n,
            t,
            sender,
            sender_value,
            params,
            vks,
            key,
            extracted: BTreeSet::new(),
            decided: None,
            done: false,
        }
    }

    /// The decided value, after `t + 1` rounds.
    pub fn output(&self) -> Option<u8> {
        self.decided
    }

    fn relay(&mut self, ctx: &mut Ctx<'_>, mut msg: DsMessage) {
        let signers: Vec<PartyId> = msg.chain.iter().map(|l| l.signer).collect();
        let payload = signed_payload(msg.value, &signers);
        // Each relayed value consumes a one-time key slot: index by the
        // number of values extracted so far (≤ 2 matter).
        let slot = (self.extracted.len().saturating_sub(1)).min(self.params.capacity() - 1);
        let sig = self.key.sign_with_index(&payload, slot);
        msg.chain.push(ChainLink {
            signer: self.me,
            sig,
        });
        for i in 0..self.n as u64 {
            let peer = PartyId(i);
            if peer != self.me {
                ctx.send_msg(peer, &msg);
            }
        }
    }
}

impl Machine for DolevStrong {
    fn on_round(&mut self, ctx: &mut Ctx<'_>, inbox: &[Envelope]) {
        if self.done {
            return;
        }
        let round = ctx.round();
        if round == 0 {
            if let Some(v) = self.sender_value {
                self.extracted.insert(v);
                self.relay(
                    ctx,
                    DsMessage {
                        value: v,
                        chain: Vec::new(),
                    },
                );
            }
            return;
        }
        if round > self.t as u64 + 1 {
            // Decide: unique extracted value or the default 0.
            self.decided = Some(if self.extracted.len() == 1 {
                *self.extracted.iter().next().expect("nonempty")
            } else {
                0
            });
            self.done = true;
            return;
        }
        // Process round-r messages: accept chains of length exactly r with
        // distinct valid signatures; extract and relay new values.
        let mut to_relay = Vec::new();
        for env in inbox {
            // Dynamic filter: don't even process once two values are known
            // (any further message cannot change the outcome).
            if self.extracted.len() >= 2 {
                break;
            }
            let Some(msg) = ctx.recv_msg::<DsMessage>(env) else {
                continue;
            };
            if msg.chain.len() != round as usize {
                continue;
            }
            if !chain_valid(&msg, self.sender, &self.params, &self.vks) {
                continue;
            }
            if msg.chain.iter().any(|l| l.signer == self.me) {
                continue;
            }
            if self.extracted.insert(msg.value) {
                to_relay.push(msg);
            }
        }
        for msg in to_relay {
            if (ctx.round() as usize) <= self.t {
                self.relay(ctx, msg);
            }
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

/// Outcome of one Dolev–Strong broadcast.
#[derive(Clone, Debug)]
pub struct DsOutcome {
    /// Per-party outputs.
    pub outputs: Vec<Option<u8>>,
    /// Communication report over honest parties.
    pub report: Report,
}

/// Runs Dolev–Strong broadcast with an honest sender and `corrupt` silent
/// parties (adversarial variants are driven through custom adversaries in
/// tests).
pub fn run_dolev_strong(
    n: usize,
    t: usize,
    sender: PartyId,
    value: u8,
    corrupt: &BTreeSet<PartyId>,
    seed: &[u8],
) -> DsOutcome {
    let prg = Prg::from_seed_label(seed, "dolev-strong");
    let params = MssParams::new(16, 1);
    let keys: Vec<MssKeyPair> = (0..n)
        .map(|i| {
            let mut kprg = prg.child("key", i as u64);
            MssKeyPair::generate(&params, &mut kprg)
        })
        .collect();
    let vks: Vec<MssVerificationKey> = keys.iter().map(|k| k.verification_key()).collect();

    let mut net = Network::new(n);
    let mut machines: BTreeMap<PartyId, DolevStrong> = BTreeMap::new();
    for (i, key) in keys.into_iter().enumerate() {
        let p = PartyId(i as u64);
        if corrupt.contains(&p) {
            continue;
        }
        machines.insert(
            p,
            DolevStrong::new(
                p,
                n,
                t,
                sender,
                (p == sender).then_some(value),
                params,
                vks.clone(),
                key,
            ),
        );
    }
    let mut adversary = SilentAdversary::new(corrupt.iter().copied());
    {
        let mut erased: BTreeMap<PartyId, Box<dyn Machine + Send + '_>> = machines
            .iter_mut()
            .map(|(&id, m)| (id, Box::new(m) as Box<dyn Machine + Send + '_>))
            .collect();
        let outcome = run_phase(
            &mut net,
            &mut erased,
            &mut adversary as &mut dyn Adversary,
            t as u64 + 4,
        );
        assert!(outcome.completed, "Dolev-Strong did not terminate");
    }
    let honest: Vec<PartyId> = (0..n as u64)
        .map(PartyId)
        .filter(|p| !corrupt.contains(p))
        .collect();
    DsOutcome {
        outputs: (0..n as u64)
            .map(|i| machines.get(&PartyId(i)).and_then(|m| m.output()))
            .collect(),
        report: net.metrics().report_for(honest),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_sender_all_agree() {
        let out = run_dolev_strong(9, 2, PartyId(0), 1, &BTreeSet::new(), b"ds1");
        for (i, o) in out.outputs.iter().enumerate() {
            assert_eq!(*o, Some(1), "party {i}");
        }
    }

    #[test]
    fn silent_corrupt_parties_do_not_block() {
        let corrupt: BTreeSet<PartyId> = [PartyId(7), PartyId(8)].into();
        let out = run_dolev_strong(9, 2, PartyId(0), 1, &corrupt, b"ds2");
        for i in 0..7 {
            assert_eq!(out.outputs[i], Some(1), "party {i}");
        }
    }

    #[test]
    fn silent_sender_defaults() {
        let corrupt: BTreeSet<PartyId> = [PartyId(0)].into();
        let out = run_dolev_strong(7, 1, PartyId(0), 1, &corrupt, b"ds3");
        for i in 1..7 {
            assert_eq!(out.outputs[i], Some(0), "party {i}");
        }
    }

    /// Equivocating sender: signs 0 for half the parties, 1 for the rest.
    struct EquivocatingSender {
        corrupted: BTreeSet<PartyId>,
        n: usize,
        key: MssKeyPair,
    }

    impl Adversary for EquivocatingSender {
        fn corrupted(&self) -> &BTreeSet<PartyId> {
            &self.corrupted
        }
        fn on_round(
            &mut self,
            round: u64,
            _rushed: &BTreeMap<PartyId, Vec<Envelope>>,
            sender: &mut pba_net::AdvSender<'_>,
        ) {
            if round != 0 {
                return;
            }
            let me = PartyId(0);
            for i in 1..self.n as u64 {
                let value = (i % 2) as u8;
                let sig = self
                    .key
                    .sign_with_index(&signed_payload(value, &[]), value as usize);
                let msg = DsMessage {
                    value,
                    chain: vec![ChainLink { signer: me, sig }],
                };
                sender.send_msg(me, PartyId(i), &msg);
            }
        }
    }

    #[test]
    fn equivocating_sender_detected_consistently() {
        let n = 9;
        let t = 2;
        let prg = Prg::from_seed_label(b"ds4", "dolev-strong");
        let params = MssParams::new(16, 1);
        let keys: Vec<MssKeyPair> = (0..n)
            .map(|i| MssKeyPair::generate(&params, &mut prg.child("key", i as u64)))
            .collect();
        let vks: Vec<MssVerificationKey> = keys.iter().map(|k| k.verification_key()).collect();
        let sender_key = keys[0].clone();

        let mut net = Network::new(n);
        let mut machines: BTreeMap<PartyId, DolevStrong> = BTreeMap::new();
        for (i, key) in keys.into_iter().enumerate().skip(1) {
            let p = PartyId(i as u64);
            machines.insert(
                p,
                DolevStrong::new(p, n, t, PartyId(0), None, params, vks.clone(), key),
            );
        }
        let mut adversary = EquivocatingSender {
            corrupted: [PartyId(0)].into(),
            n,
            key: sender_key,
        };
        {
            let mut erased: BTreeMap<PartyId, Box<dyn Machine + Send + '_>> = machines
                .iter_mut()
                .map(|(&id, m)| (id, Box::new(m) as Box<dyn Machine + Send + '_>))
                .collect();
            run_phase(&mut net, &mut erased, &mut adversary, t as u64 + 4);
        }
        // Agreement: all honest output the same (default 0 on detected
        // equivocation — relayed chains expose both values to everyone).
        let outputs: BTreeSet<Option<u8>> = machines.values().map(|m| m.output()).collect();
        assert_eq!(outputs.len(), 1, "honest disagreement: {outputs:?}");
        assert_eq!(outputs.into_iter().next().unwrap(), Some(0));
    }

    #[test]
    fn chain_validation_rejects_bad_chains() {
        let prg = Prg::from_seed_bytes(b"ds5");
        let params = MssParams::new(16, 1);
        let k0 = MssKeyPair::generate(&params, &mut prg.child("k", 0));
        let k1 = MssKeyPair::generate(&params, &mut prg.child("k", 1));
        let vks = vec![k0.verification_key(), k1.verification_key()];
        let sender = PartyId(0);

        // Valid 2-link chain.
        let sig0 = k0.sign_with_index(&signed_payload(1, &[]), 0);
        let sig1 = k1.sign_with_index(&signed_payload(1, &[sender]), 0);
        let good = DsMessage {
            value: 1,
            chain: vec![
                ChainLink {
                    signer: sender,
                    sig: sig0.clone(),
                },
                ChainLink {
                    signer: PartyId(1),
                    sig: sig1.clone(),
                },
            ],
        };
        assert!(chain_valid(&good, sender, &params, &vks));

        // Wrong first signer.
        let bad = DsMessage {
            value: 1,
            chain: vec![ChainLink {
                signer: PartyId(1),
                sig: sig1.clone(),
            }],
        };
        assert!(!chain_valid(&bad, sender, &params, &vks));

        // Duplicate signer.
        let dup = DsMessage {
            value: 1,
            chain: vec![
                ChainLink {
                    signer: sender,
                    sig: sig0.clone(),
                },
                ChainLink {
                    signer: sender,
                    sig: sig0.clone(),
                },
            ],
        };
        assert!(!chain_valid(&dup, sender, &params, &vks));

        // Signature over the wrong value.
        let wrong = DsMessage {
            value: 0,
            chain: vec![ChainLink {
                signer: sender,
                sig: sig0,
            }],
        };
        assert!(!chain_valid(&wrong, sender, &params, &vks));
    }

    #[test]
    fn message_codec_roundtrip() {
        let mut prg = Prg::from_seed_bytes(b"ds6");
        let params = MssParams::new(16, 1);
        let k = MssKeyPair::generate(&params, &mut prg);
        let msg = DsMessage {
            value: 1,
            chain: vec![ChainLink {
                signer: PartyId(3),
                sig: k.sign_with_index(b"x", 0),
            }],
        };
        let bytes = pba_crypto::codec::encode_to_vec(&msg);
        let back: DsMessage = pba_crypto::codec::decode_from_slice(&bytes).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn quadratic_communication_shape() {
        let small = run_dolev_strong(8, 1, PartyId(0), 1, &BTreeSet::new(), b"ds7");
        let large = run_dolev_strong(16, 1, PartyId(0), 1, &BTreeSet::new(), b"ds7");
        // Total ~ n^2 messages: 2x parties => ~4x total bytes (within slop).
        let ratio = large.report.total_bytes as f64 / small.report.total_bytes as f64;
        assert!(ratio > 3.0, "ratio {ratio}");
    }
}
