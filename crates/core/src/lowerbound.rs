//! Executable intuition for the lower bounds (Theorems 1.3 and 1.4): a
//! **single-round boost** from almost-everywhere to everywhere agreement in
//! which every party sends `o(n)` messages *cannot* work without
//! private-coin setup — and the SRDS certificate is exactly what repairs it.
//!
//! The experiment stages the adversary from the paper's proof sketch:
//! an isolated honest party (outside the almost-everywhere agreement)
//! receives a few messages from honest parties carrying the agreed value,
//! but the adversary — whose corrupted parties are unconstrained — floods
//! it with more messages carrying the opposite value. With only a common
//! reference string (no PKI), incoming messages are distinguishable only by
//! count, so the victim is outvoted and decides wrong. With an SRDS
//! certificate attached (which needs the PKI the theorem shows necessary,
//! plus one-way functions), the flood fails verification and the victim
//! decides correctly.

use pba_crypto::prg::Prg;
use pba_net::{Network, PartyId};
use pba_srds::traits::{PkiBoard, Srds};
use std::collections::BTreeSet;

/// Outcome of one isolation attack.
#[derive(Clone, Debug)]
pub struct IsolationOutcome {
    /// Honest messages (true value) the victim processed.
    pub honest_msgs: usize,
    /// Adversarial messages (false value) the victim processed.
    pub adversarial_msgs: usize,
    /// What the victim decided (`None` = tie / no decision).
    pub victim_output: Option<u8>,
    /// Whether the adversary succeeded in flipping the victim.
    pub victim_fooled: bool,
    /// Bytes the victim processed.
    pub victim_bytes: u64,
}

/// The CRS-model strawman: each of the `n − t − 1` agreeing honest parties
/// sends the value `1` to `k` random parties (so each sends `o(n)`
/// messages); every corrupted party sends `0` directly to the victim.
/// The victim takes the majority of what it received.
///
/// With `t ≫ k` the adversary wins — the content of honest messages cannot
/// be distinguished from corrupt ones without keys.
pub fn isolation_attack_crs(n: usize, t: usize, k: usize, seed: &[u8]) -> IsolationOutcome {
    assert!(3 * t < n, "corruptions below n/3");
    assert!(k < n, "k must be o(n), certainly < n");
    let mut prg = Prg::from_seed_label(seed, "isolation");
    let victim = PartyId((n - 1) as u64);
    let corrupt: BTreeSet<PartyId> = (0..t as u64).map(PartyId).collect();
    let mut net = Network::new(n);

    const MSG_BYTES: usize = 2;
    let mut honest_msgs = 0usize;
    // Honest parties (holding the a.e.-agreed value 1) spread to k random targets.
    for i in t as u64..(n - 1) as u64 {
        let p = PartyId(i);
        for target in prg.sample_distinct(n as u64, k) {
            let q = PartyId(target);
            net.metrics_mut().record_send(p, q, MSG_BYTES);
            if q == victim {
                net.metrics_mut().record_receive(victim, p, MSG_BYTES);
                honest_msgs += 1;
            }
        }
    }
    // Every corrupt party targets the victim with the flipped value.
    let mut adversarial_msgs = 0usize;
    for &p in &corrupt {
        net.metrics_mut().record_send(p, victim, MSG_BYTES);
        net.metrics_mut().record_receive(victim, p, MSG_BYTES);
        adversarial_msgs += 1;
    }
    net.bump_round();

    let victim_output = match honest_msgs.cmp(&adversarial_msgs) {
        std::cmp::Ordering::Greater => Some(1),
        std::cmp::Ordering::Less => Some(0),
        std::cmp::Ordering::Equal => None,
    };
    IsolationOutcome {
        honest_msgs,
        adversarial_msgs,
        victim_output,
        victim_fooled: victim_output != Some(1),
        victim_bytes: net.metrics().party(victim).bytes_received,
    }
}

/// The SRDS-repaired variant: the same flood, but honest messages carry a
/// valid SRDS certificate on the value and the victim verifies before
/// counting. The adversary (controlling `< n/3` keys) cannot attach a
/// certificate to the flipped value, so a *single* honest message suffices.
pub fn isolation_attack_with_srds<S>(
    scheme: &S,
    n: usize,
    t: usize,
    k: usize,
    seed: &[u8],
) -> IsolationOutcome
where
    S: Srds,
{
    assert!(3 * t < n, "corruptions below n/3");
    let mut prg = Prg::from_seed_label(seed, "isolation-srds");
    let board = PkiBoard::<S>::establish(scheme, n, &mut prg);
    let keys = board.prepare(scheme);
    let message = b"agreed-value:1";
    let wrong = b"agreed-value:0";

    // Honest majority signs and aggregates the true value's certificate.
    let honest_sigs: Vec<S::Signature> = (t as u64..n as u64)
        .filter_map(|i| scheme.sign(&board.pp, i, &board.sks[i as usize], message))
        .collect();
    let certificate = scheme
        .aggregate(&board.pp, &keys, message, &honest_sigs)
        .expect("honest certificate");
    let cert_len = scheme.signature_len(&certificate);

    // The adversary's best effort on the wrong value: its own signatures.
    let corrupt_sigs: Vec<S::Signature> = (0..t as u64)
        .filter_map(|i| scheme.sign(&board.pp, i, &board.sks[i as usize], wrong))
        .collect();
    let forged = scheme.aggregate(&board.pp, &keys, wrong, &corrupt_sigs);

    let victim = PartyId((n - 1) as u64);
    let mut net = Network::new(n);
    let mut honest_msgs = 0usize;
    for i in t as u64..(n - 1) as u64 {
        let p = PartyId(i);
        for target in prg.sample_distinct(n as u64, k.min(n - 1)) {
            let q = PartyId(target);
            net.metrics_mut().record_send(p, q, cert_len + 2);
            if q == victim {
                net.metrics_mut().record_receive(victim, p, cert_len + 2);
                // Victim verifies the certificate before accepting.
                if scheme.verify(&board.pp, &keys, message, &certificate) {
                    honest_msgs += 1;
                }
            }
        }
    }
    let mut adversarial_msgs = 0usize;
    for i in 0..t as u64 {
        let p = PartyId(i);
        let len = forged
            .as_ref()
            .map(|f| scheme.signature_len(f))
            .unwrap_or(2)
            + 2;
        net.metrics_mut().record_send(p, victim, len);
        net.metrics_mut().record_receive(victim, p, len);
        // Victim verifies: the sub-third coalition's aggregate never passes.
        if let Some(f) = &forged {
            if scheme.verify(&board.pp, &keys, wrong, f) {
                adversarial_msgs += 1;
            }
        }
    }
    net.bump_round();

    // Certified decision: any verified certificate wins outright.
    let victim_output = if honest_msgs > 0 {
        Some(1)
    } else if adversarial_msgs > 0 {
        Some(0)
    } else {
        None
    };
    IsolationOutcome {
        honest_msgs,
        adversarial_msgs,
        victim_output,
        victim_fooled: victim_output == Some(0),
        victim_bytes: net.metrics().party(victim).bytes_received,
    }
}

/// The Theorem 1.4 demonstration: in the *trusted-PKI* model, one-way
/// functions are **necessary** for a single-round `o(n)`-message boost.
///
/// We model "OWF do not exist" by a key-generation function the adversary
/// can invert: verification keys are `vk = G(sk)` for an *invertible* `G`
/// (here: the identity — any efficiently invertible injection behaves the
/// same). "Signatures" are `H(sk ‖ m)` and certificates count distinct
/// signatures, mirroring the OWF-SRDS shape. Because the adversary can
/// recover every honest party's `sk` from the public board, it forges a
/// full certificate on the flipped value — the victim sees two valid
/// majority certificates and cannot decide correctly, exactly the attack
/// in the theorem's proof sketch.
pub fn isolation_attack_invertible_pki(n: usize, t: usize, seed: &[u8]) -> IsolationOutcome {
    assert!(3 * t < n, "corruptions below n/3");
    let mut prg = Prg::from_seed_label(seed, "isolation-no-owf");
    use pba_crypto::sha256::Sha256;

    // Trusted PKI with invertible keygen: vk = identity(sk).
    let sks: Vec<[u8; 32]> = (0..n)
        .map(|_| {
            let mut sk = [0u8; 32];
            rand::RngCore::fill_bytes(&mut prg, &mut sk);
            sk
        })
        .collect();
    let vks: Vec<[u8; 32]> = sks.clone(); // G = identity: publicly invertible

    let sign = |sk: &[u8; 32], m: &[u8]| {
        let mut h = Sha256::new();
        h.update(sk);
        h.update(m);
        h.finalize()
    };
    let verify = |vk: &[u8; 32], m: &[u8], sig: &pba_crypto::sha256::Digest| {
        // Verification must work from the public key alone; with an
        // invertible G the verifier recomputes sk = G^{-1}(vk) = vk.
        sign(vk, m) == *sig
    };
    let threshold = n / 2 + 1;
    let certificate_valid = |m: &[u8], sigs: &[(usize, pba_crypto::sha256::Digest)]| {
        let mut seen = BTreeSet::new();
        sigs.iter()
            .filter(|(i, sig)| seen.insert(*i) && verify(&vks[*i], m, sig))
            .count()
            >= threshold
    };

    // Honest certificate on the agreed value.
    let honest_cert: Vec<(usize, pba_crypto::sha256::Digest)> =
        (t..n).map(|i| (i, sign(&sks[i], b"value:1"))).collect();
    assert!(certificate_valid(b"value:1", &honest_cert));

    // The adversary INVERTS the PKI and forges everyone's signature on 0.
    let forged_cert: Vec<(usize, pba_crypto::sha256::Digest)> = (0..n)
        .map(|i| {
            let recovered_sk = vks[i]; // G^{-1}
            (i, sign(&recovered_sk, b"value:0"))
        })
        .collect();
    let forged_ok = certificate_valid(b"value:0", &forged_cert);

    // The victim receives both certificates (one honest message suffices
    // for each side) and cannot break the tie.
    IsolationOutcome {
        honest_msgs: 1,
        adversarial_msgs: usize::from(forged_ok),
        victim_output: if forged_ok { None } else { Some(1) },
        victim_fooled: forged_ok,
        victim_bytes: (honest_cert.len() + forged_cert.len()) as u64 * 40,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pba_srds::owf::OwfSrds;
    use pba_srds::snark::SnarkSrds;

    #[test]
    fn crs_model_victim_is_outvoted() {
        // n = 300, t = 90, k = 8: victim expects ~8 honest messages versus
        // 90 adversarial ones.
        let out = isolation_attack_crs(300, 90, 8, b"iso-1");
        assert!(out.adversarial_msgs > out.honest_msgs);
        assert!(out.victim_fooled, "{out:?}");
    }

    #[test]
    fn crs_model_large_k_would_save_victim_but_is_not_sublinear() {
        // With k close to n the victim survives — but then parties send
        // Θ(n) messages, which is exactly what the lower bound permits.
        let out = isolation_attack_crs(300, 60, 250, b"iso-2");
        assert!(!out.victim_fooled, "{out:?}");
    }

    #[test]
    fn srds_certificate_repairs_the_boost_owf() {
        let scheme = OwfSrds::with_defaults();
        let out = isolation_attack_with_srds(&scheme, 300, 90, 8, b"iso-3");
        assert!(!out.victim_fooled, "{out:?}");
        assert_eq!(out.adversarial_msgs, 0, "forged certificate verified!");
    }

    #[test]
    fn srds_certificate_repairs_the_boost_snark() {
        let scheme = SnarkSrds::with_defaults();
        let out = isolation_attack_with_srds(&scheme, 120, 36, 8, b"iso-4");
        assert!(!out.victim_fooled, "{out:?}");
        assert_eq!(out.adversarial_msgs, 0, "forged certificate verified!");
    }

    #[test]
    fn theorem_1_4_invertible_pki_breaks_the_boost() {
        // Without OWF (invertible keygen) the adversary forges a full
        // majority certificate on the flipped value: the boost fails even
        // WITH a trusted PKI — cryptography, not just setup, is necessary.
        let out = isolation_attack_invertible_pki(300, 90, b"no-owf");
        assert!(out.victim_fooled, "{out:?}");
        // Contrast: with the (one-way) Lamport-based SRDS the same budget
        // forges nothing (see srds_certificate_repairs_the_boost_owf).
    }

    #[test]
    fn victim_processing_stays_sublinear_with_srds() {
        let scheme = SnarkSrds::with_defaults();
        let out = isolation_attack_with_srds(&scheme, 120, 36, 8, b"iso-5");
        // The victim processed ~t + k messages of Õ(1) size — flooding costs
        // the adversary, not the victim (certificates are small).
        assert!(out.victim_bytes < 120 * 200);
    }
}
