//! Offline stand-in for the slice of the `criterion` API this workspace's
//! benches use: `Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Bencher`,
//! `Throughput`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros.
//!
//! The build environment has no network access to crates.io. This
//! stand-in keeps benches source-compatible with upstream criterion and
//! runs each registered function a small, fixed number of iterations,
//! reporting mean wall-clock time per iteration — enough to compare hot
//! paths locally and to keep `--all-targets` builds green; swap the real
//! crate back in for statistically rigorous numbers.

use std::fmt::{self, Display};
use std::time::Instant;

pub use std::hint::black_box;

/// Iterations per measured benchmark (after one warm-up iteration).
const MEASURE_ITERS: u32 = 10;

/// A benchmark identifier: function name plus optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id for `name` at parameter `parameter`.
    pub fn new<P: Display>(name: impl Into<String>, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Declared throughput of a benchmark (recorded, echoed in output).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The per-benchmark timing driver.
#[derive(Debug, Default)]
pub struct Bencher {
    nanos_per_iter: Option<f64>,
}

impl Bencher {
    /// Times `routine`, running a warm-up iteration then
    /// [`MEASURE_ITERS`] measured iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            black_box(routine());
        }
        self.nanos_per_iter = Some(start.elapsed().as_nanos() as f64 / MEASURE_ITERS as f64);
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility; the
    /// stand-in's iteration count is fixed).
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Declares the group's throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        println!("{}: throughput {throughput:?}", self.name);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::default();
        f(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher::default();
        f(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    /// Finishes the group (no-op; exists for API compatibility).
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        match bencher.nanos_per_iter {
            Some(ns) => println!("{}/{}: {:.0} ns/iter", self.name, id.label, ns),
            None => println!("{}/{}: no measurement", self.name, id.label),
        }
    }
}

/// The top-level benchmark registry/driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

impl fmt::Display for Criterion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "criterion (offline stand-in)")
    }
}

/// Groups benchmark functions under a name callable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures() {
        let mut b = Bencher::default();
        b.iter(|| 40 + 2);
        assert!(b.nanos_per_iter.is_some());
    }

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.bench_function(BenchmarkId::new("f", 1), |b| b.iter(|| black_box(1)));
        group.bench_with_input(BenchmarkId::from_parameter(2), &2u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }

    criterion_group!(smoke, sample_bench);

    #[test]
    fn group_macro_runs() {
        smoke();
    }
}
