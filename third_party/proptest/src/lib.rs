//! Offline stand-in for the slice of the `proptest` API this workspace
//! uses: the [`proptest!`] macro, `prop_assert*` macros, [`any`],
//! [`collection::vec`], range/tuple strategies, and [`ProptestConfig`].
//!
//! The build environment has no network access to crates.io, so the real
//! crate cannot be fetched. This stand-in keeps the same surface syntax so
//! the test suite is source-compatible with upstream proptest; semantics
//! differ in two deliberate ways:
//!
//! * **no shrinking** — on failure the *exact generated inputs* are
//!   printed (they regenerate deterministically from the case seed), which
//!   is the reproduction story this deterministic codebase wants anyway;
//! * **deterministic by default** — cases derive from a fixed seed, so CI
//!   runs are replayable; set `PROPTEST_SEED` to explore a new region and
//!   `PROPTEST_CASES` to scale the number of cases per test.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Runner configuration (mirrors the upstream field we use).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic case generator handed to strategies: SplitMix64.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for one `(test, case)` pair.
    pub fn new(seed: u64, test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name keeps per-test streams independent.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: seed ^ h ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// Next 64 uniformly pseudorandom bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty strategy range");
        // Modulo bias is irrelevant for test-case generation.
        self.next_u64() % bound
    }
}

/// A value generator. Upstream proptest's `Strategy` carries shrinking
/// machinery; here a strategy is just a deterministic sampler.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is admissible.
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// A minimal regex-pattern strategy: string literals used as strategies
/// (upstream proptest's regex support). Supports the subset this
/// workspace's tests use — one character class with an optional
/// repetition, e.g. `"[a-z]{1,8}"`; any other pattern generates itself
/// literally.
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        if let Some(rest) = self.strip_prefix('[') {
            if let Some((class, tail)) = rest.split_once(']') {
                let chars = expand_class(class);
                if !chars.is_empty() {
                    let (lo, hi) = parse_repetition(tail);
                    let len = lo + rng.below((hi - lo + 1) as u64) as usize;
                    return (0..len)
                        .map(|_| chars[rng.below(chars.len() as u64) as usize])
                        .collect();
                }
            }
        }
        self.to_string()
    }
}

fn expand_class(class: &str) -> Vec<char> {
    let mut out = Vec::new();
    let mut chars = class.chars().peekable();
    while let Some(c) = chars.next() {
        if chars.peek() == Some(&'-') {
            let mut lookahead = chars.clone();
            lookahead.next(); // the '-'
            if let Some(end) = lookahead.next() {
                chars = lookahead;
                out.extend((c..=end).filter(|ch| ch.is_ascii()));
                continue;
            }
        }
        out.push(c);
    }
    out
}

fn parse_repetition(tail: &str) -> (usize, usize) {
    match tail {
        "" => (1, 1),
        "*" => (0, 8),
        "+" => (1, 8),
        _ => {
            let inner = tail.trim_start_matches('{').trim_end_matches('}');
            let mut parts = inner.splitn(2, ',');
            let lo: usize = parts.next().and_then(|s| s.parse().ok()).unwrap_or(1);
            let hi: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .unwrap_or(lo)
                .max(lo);
            (lo, hi)
        }
    }
}

/// A strategy producing a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A strategy choosing uniformly among boxed sub-strategies with a
/// common value type — the subset of upstream's `prop_oneof!` this
/// workspace uses (no weights; upstream's per-variant shrinking does
/// not apply since strategies here are plain samplers). Built by
/// [`prop_oneof!`].
pub struct Union<T>(pub Vec<Box<dyn Strategy<Value = T>>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "empty prop_oneof");
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

/// Types with a canonical "uniform" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generates one uniform value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        for b in &mut out {
            *b = rng.next_u64() as u8;
        }
        out
    }
}

/// Strategy wrapper returned by [`any`].
#[derive(Clone, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (uniform over its value space).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// A collection length specification (half-open), converted from the
/// range forms the tests write (`0..24`, `2usize..5`, or a fixed size).
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        assert!(self.lo < self.hi, "empty size range");
        self.lo + rng.below((self.hi - self.lo) as u64) as usize
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::Range<i32>> for SizeRange {
    fn from(r: std::ops::Range<i32>) -> Self {
        SizeRange {
            lo: r.start.max(0) as usize,
            hi: r.end.max(0) as usize,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange {
            lo: len,
            hi: len + 1,
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for `Vec<T>` with element strategy `element` and a length
    /// drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The global base seed: `PROPTEST_SEED` env var or a fixed default.
pub fn base_seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x70ba_70ba_70ba_70ba)
}

fn case_count(config: &ProptestConfig) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(config.cases)
        .max(1)
}

/// Drives one property: runs `config.cases` generated cases, printing the
/// reproduction line (seed + case + inputs) if one panics.
pub fn run_cases<F>(config: ProptestConfig, test_name: &str, mut case_fn: F)
where
    F: FnMut(&mut TestRng) -> String,
{
    let seed = base_seed();
    for case in 0..case_count(&config) {
        let mut rng = TestRng::new(seed, test_name, case);
        let mut inputs = String::new();
        let result = catch_unwind(AssertUnwindSafe(|| {
            inputs = case_fn(&mut rng);
        }));
        if let Err(panic) = result {
            eprintln!(
                "proptest failure in `{test_name}` \
                 (reproduce with PROPTEST_SEED={seed}, case {case}):\n  {inputs}"
            );
            resume_unwind(panic);
        }
    }
}

/// Runs one property body (see [`proptest!`]; a separate function so
/// `prop_assume!`'s early return has a frame to return from).
pub fn run_once<F: FnOnce()>(body: F) {
    body()
}

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, Union,
    };
}

/// Boxes one `prop_oneof!` variant; a named function (rather than an
/// `as Box<dyn Strategy<Value = _>>` cast, whose placeholder would hit
/// integer fallback before the surrounding `vec!` unifies it) so the
/// value type is pinned by the strategy itself.
#[doc(hidden)]
pub fn boxed_strategy<S: Strategy + 'static>(strategy: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(strategy)
}

/// Builds a [`Union`] strategy choosing uniformly among the given
/// sub-strategies (which must share one value type), e.g.
/// `prop_oneof![Just(0usize), 2usize..9, Just(33usize)]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union(vec![$( $crate::boxed_strategy($strategy) ),+])
    };
}

/// Asserts a condition inside a property (panics with context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Rejects the current case when the assumption fails (early-returns from
/// the property body; upstream additionally retries with fresh inputs).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(binding in strategy, ...) { .. }`
/// item becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@items ($cfg) $($rest)*);
    };
    (@items ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::run_cases($cfg, stringify!($name), |rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                let repro = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                // Inner closure so `prop_assume!` can reject the case by
                // early return without skipping the repro bookkeeping.
                $crate::run_once(move || $body);
                repro
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@items ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(1, "t", 0);
        for _ in 0..1000 {
            let v = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn deterministic_per_seed_and_case() {
        let a: [u8; 8] = any().generate(&mut TestRng::new(7, "x", 3));
        let b: [u8; 8] = any().generate(&mut TestRng::new(7, "x", 3));
        let c: [u8; 8] = any().generate(&mut TestRng::new(7, "x", 4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn oneof_hits_every_variant_and_respects_each() {
        let strat = prop_oneof![Just(0usize), 2usize..9, Just(33usize)];
        let mut rng = TestRng::new(5, "u", 0);
        let mut saw = [false; 3];
        for _ in 0..500 {
            match strat.generate(&mut rng) {
                0 => saw[0] = true,
                2..=8 => saw[1] = true,
                33 => saw[2] = true,
                v => panic!("value {v} outside every prop_oneof variant"),
            }
        }
        assert_eq!(saw, [true; 3], "some variant was never chosen");
    }

    #[test]
    fn vec_strategy_length_in_range() {
        let strat = collection::vec(any::<u8>(), 2usize..5);
        let mut rng = TestRng::new(9, "v", 0);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_smoke(x in 0u64..10, flag in any::<bool>(), bytes in any::<[u8; 8]>()) {
            prop_assert!(x < 10);
            prop_assert_eq!(bytes.len(), 8);
            let _ = flag;
        }
    }
}
