//! Offline stand-in for the slice of the `rand` 0.8 API used by this
//! workspace (`RngCore`, `CryptoRng`, `SeedableRng`, `Error`).
//!
//! The build environment has no network access to crates.io, and the only
//! consumer of `rand` here is [`pba_crypto::prg::Prg`] implementing the
//! generator traits so protocol randomness stays swappable. This crate
//! mirrors the trait definitions exactly (same method names and
//! signatures) so the real `rand` can be dropped back in without source
//! changes.

use std::fmt;

/// Error type for fallible generator operations.
///
/// The deterministic generators in this workspace never fail, so this is
/// only ever constructed by code paths that exist for API compatibility.
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Creates an error with a static message.
    pub fn new(msg: &'static str) -> Self {
        Error { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// The core random-number-generator interface (mirrors `rand_core`).
pub trait RngCore {
    /// Returns the next 32 bits of the stream.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 bits of the stream.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with stream bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// Marker trait for cryptographically secure generators.
pub trait CryptoRng {}

impl<R: CryptoRng + ?Sized> CryptoRng for &mut R {}

/// Generators constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs the generator from a seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64` (spread across the seed).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for (i, b) in seed.as_mut().iter_mut().enumerate() {
            *b = state.to_le_bytes()[i % 8];
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 += 1;
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u64() as u8;
            }
        }
    }

    #[test]
    fn default_try_fill_delegates() {
        let mut rng = Counter(0);
        let mut buf = [0u8; 4];
        rng.try_fill_bytes(&mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3, 4]);
    }

    #[test]
    fn mut_ref_forwarding() {
        let mut rng = Counter(0);
        let r = &mut rng;
        fn takes_rng<R: RngCore>(mut r: R) -> u64 {
            r.next_u64()
        }
        assert_eq!(takes_rng(r), 1);
    }
}
