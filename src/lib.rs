#![warn(missing_docs)]
//! # polylog-ba
//!
//! A production-quality Rust reproduction of
//! *Boyle, Cohen, Goel — "Breaking the O(√n)-Bit Barrier: Byzantine
//! Agreement with Polylog Bits Per Party"* (PODC 2021).
//!
//! The paper constructs the first Byzantine agreement protocols in which
//! **every** party communicates only `polylog(n) · poly(κ)` bits, via a new
//! primitive — *succinctly reconstructed distributed signatures (SRDS)* —
//! that certifies majority agreement with an `Õ(1)`-size certificate
//! aggregated up an almost-everywhere communication tree.
//!
//! This crate is a facade over the workspace:
//!
//! * [`crypto`] ([`pba_crypto`]) — from-scratch SHA-256, HMAC, PRF/PRG,
//!   Merkle trees, Lamport/Merkle signatures, field/Shamir, codecs;
//! * [`snark`] ([`pba_snark`]) — simulated SNARKs, proof-carrying data,
//!   and the generalized subset task of §1.2;
//! * [`net`] ([`pba_net`]) — the synchronous metered network simulator;
//! * [`aetree`] ([`pba_aetree`]) — almost-everywhere communication trees
//!   (Definitions 2.3/3.4) and `f_ae-comm`;
//! * [`srds`] ([`pba_srds`]) — the SRDS primitive, the OWF/trusted-PKI and
//!   SNARK/bare-PKI constructions, the multisignature baseline, and the
//!   Figure 1/2 security experiments;
//! * [`core`] ([`pba_core`]) — `π_ba` (Figure 3), the sub-functionalities,
//!   the broadcast corollary, the Table 1 baselines, and the lower-bound
//!   isolation experiment.
//!
//! # Quickstart
//!
//! ```
//! use polylog_ba::prelude::*;
//!
//! // 64 parties agree on a bit using the OWF/trusted-PKI SRDS.
//! let scheme = OwfSrds::with_defaults();
//! let config = BaConfig::honest(64, b"quickstart");
//! let inputs = vec![1u8; 64];
//! let outcome = run_ba(&scheme, &config, &inputs);
//! assert!(outcome.agreement);
//! assert_eq!(outcome.output, Some(1));
//! // Per-party communication is polylog — far below n bytes each:
//! println!("max bytes/party: {}", outcome.report.max_bytes_per_party);
//! ```

pub use pba_aetree as aetree;
pub use pba_core as core;
pub use pba_crypto as crypto;
pub use pba_net as net;
pub use pba_snark as snark;
pub use pba_srds as srds;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use pba_aetree::{analysis::TreeAnalysis, params::TreeParams, tree::Tree};
    pub use pba_core::baselines::{all_to_all_ba, sqrt_sampling_boost};
    pub use pba_core::broadcast::{run_broadcasts, BroadcastOutcome};
    pub use pba_core::protocol::{
        run_ba, try_run_ba, AdversaryProfile, BaConfig, BaOutcome, KeyError, KeyPolicy,
        ProtocolError, ProtocolPhase, RoundOutcome, RunOutcome, Session,
    };
    pub use pba_crypto::prg::Prg;
    pub use pba_crypto::sha256::{Digest, Sha256};
    pub use pba_net::corruption::CorruptionPlan;
    pub use pba_net::faults::{GarbleMode, StrategySpec};
    pub use pba_net::{Network, PartyId, Report, TagBreakdown, WireMsg};
    pub use pba_srds::experiments::{
        run_forgery, run_robustness, AggregateForgeryAdversary, DefaultRobustnessAdversary,
    };
    pub use pba_srds::multisig::MultisigSrds;
    pub use pba_srds::owf::OwfSrds;
    pub use pba_srds::snark::SnarkSrds;
    pub use pba_srds::traits::{PkiBoard, PkiMode, Srds};
}
