//! `pba` — the command-line entry point of the `polylog-ba` reproduction.
//!
//! ```text
//! pba ba        --n 256 --t 25 --scheme snark --byzantine     # run π_ba
//! pba broadcast --n 128 --t 12 --ell 4 --sender 7             # Cor. 1.2(1)
//! pba mpc       --n 128 --t 10                                # Cor. 1.2(2)
//! pba srds      --n 300 --t 30 --scheme owf                   # Figs. 1–2 games
//! pba isolation --n 300 --t 90 --k 8                          # Thms 1.3/1.4
//! ```
//!
//! Flags are `--key value` pairs with sensible defaults; `--help` prints
//! usage. Argument parsing is hand-rolled to keep the dependency set to the
//! approved list.

use pba_core::broadcast::run_broadcasts;
use pba_core::lowerbound::{isolation_attack_crs, isolation_attack_with_srds};
use pba_core::mpc::run_mpc;
use polylog_ba::prelude::*;
use std::collections::BTreeMap;
use std::process::ExitCode;

struct Args {
    flags: BTreeMap<String, String>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Self, String> {
        let mut flags = BTreeMap::new();
        let mut it = raw.iter();
        while let Some(key) = it.next() {
            if let Some(name) = key.strip_prefix("--") {
                if name == "byzantine" || name == "help" {
                    flags.insert(name.to_string(), "true".to_string());
                } else {
                    let value = it
                        .next()
                        .ok_or_else(|| format!("--{name} expects a value"))?;
                    flags.insert(name.to_string(), value.clone());
                }
            } else {
                return Err(format!("unexpected argument {key}"));
            }
        }
        Ok(Args { flags })
    }

    fn usize_or(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: not a number: {v}")),
        }
    }

    fn str_or(&self, key: &str, default: &str) -> String {
        self.flags
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    fn bool(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }
}

const USAGE: &str = "\
pba — Byzantine agreement with polylog bits per party (Boyle–Cohen–Goel, PODC 2021)

USAGE:
    pba <command> [--key value ...]

COMMANDS:
    ba          run the balanced BA protocol pi_ba (Fig. 3)
                  --n <parties=256> --t <corruptions=n/10> --scheme <snark|owf|multisig>
                  --input <bit=1> --seed <string> [--byzantine]
    broadcast   run ell broadcast executions over one session (Cor. 1.2(1))
                  --n --t --ell <executions=4> --sender <id=0> [--byzantine]
    mpc         compute XOR of private inputs via threshold FHE (Cor. 1.2(2))
                  --n --t --len <input bytes=4> [--byzantine]
    srds        run the Figure 1/2 security games
                  --n <srds parties=300> --t --scheme <snark|owf>
    isolation   the Theorem 1.3/1.4 isolation attack
                  --n --t --k <messages per honest party=8>

Growth sweeps and tables: use the pba-bench binaries (table1, figures, ablations).
";

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("--help") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let Some((command, rest)) = raw.split_first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let args = match Args::parse(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if args.bool("help") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let result = match command.as_str() {
        "ba" => cmd_ba(&args),
        "broadcast" => cmd_broadcast(&args),
        "mpc" => cmd_mpc(&args),
        "srds" => cmd_srds(&args),
        "isolation" => cmd_isolation(&args),
        other => Err(format!("unknown command {other}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn config_from(args: &Args) -> Result<BaConfig, String> {
    let n = args.usize_or("n", 256)?;
    if n < 4 {
        return Err(format!("--n {n}: need at least 4 parties"));
    }
    let t = args.usize_or("t", n / 10)?;
    if 3 * t >= n {
        return Err(format!("t = {t} must be below n/3 = {}", n / 3));
    }
    let seed = args.str_or("seed", "pba-cli");
    let mut config = if t == 0 {
        BaConfig::honest(n, seed.as_bytes())
    } else {
        BaConfig::byzantine(n, t, seed.as_bytes())
    };
    if !args.bool("byzantine") {
        config.profile = AdversaryProfile::Passive;
    }
    Ok(config)
}

fn print_report(report: &Report) {
    println!("  rounds:            {}", report.rounds);
    println!("  max bytes/party:   {}", report.max_bytes_per_party);
    println!(
        "  avg bytes/party:   {}",
        report.total_bytes / report.parties.max(1)
    );
    println!("  total bytes:       {}", report.total_bytes);
    println!("  max locality:      {}", report.max_locality);
}

fn run_ba_with(scheme_name: &str, config: &BaConfig, inputs: &[u8]) -> Result<BaOutcome, String> {
    match scheme_name {
        "snark" => Ok(run_ba(&SnarkSrds::with_defaults(), config, inputs)),
        "owf" => Ok(run_ba(&OwfSrds::with_defaults(), config, inputs)),
        "multisig" => Ok(run_ba(&MultisigSrds::with_defaults(), config, inputs)),
        other => Err(format!("unknown scheme {other} (snark|owf|multisig)")),
    }
}

fn cmd_ba(args: &Args) -> Result<(), String> {
    let config = config_from(args)?;
    let input = args.usize_or("input", 1)? as u8;
    let scheme = args.str_or("scheme", "snark");
    println!(
        "pi_ba: n = {}, corruption = {:?}, profile = {:?}, scheme = {scheme}",
        config.n, config.corruption, config.profile
    );
    let inputs = vec![input; config.n];
    let out = run_ba_with(&scheme, &config, &inputs)?;
    println!("  agreement:         {}", out.agreement);
    println!(
        "  output:            {:?} (validity: {})",
        out.output, out.validity
    );
    println!(
        "  certificate:       {} bytes",
        out.certificate_len.unwrap_or(0)
    );
    print_report(&out.report);
    println!("  per-step bytes:");
    for step in &out.steps {
        println!("    {:<28} {:>14}", step.label, step.total_bytes);
    }
    if out.agreement {
        Ok(())
    } else {
        Err("agreement failed".into())
    }
}

fn cmd_broadcast(args: &Args) -> Result<(), String> {
    let config = config_from(args)?;
    let ell = args.usize_or("ell", 4)?;
    let sender_idx = args.usize_or("sender", 0)?;
    if sender_idx >= config.n {
        return Err(format!(
            "--sender {sender_idx} out of range for n = {}",
            config.n
        ));
    }
    let sender = PartyId(sender_idx as u64);
    let scheme = pba_srds::snark::SnarkSrds::new(pba_srds::snark::SnarkSrdsConfig {
        mss_bits: 32,
        mss_height: (usize::BITS - ell.saturating_sub(1).leading_zeros()) as usize + 1,
    });
    println!(
        "broadcast: n = {}, sender = {sender}, ell = {ell} executions",
        config.n
    );
    let values: Vec<u8> = (0..ell).map(|i| (i % 2) as u8).collect();
    let out = run_broadcasts(&scheme, &config, sender, &values);
    println!("  all delivered:     {}", out.all_delivered);
    println!(
        "  amortized max bytes/party/exec: {:.0}",
        out.amortized_max_bytes_per_party()
    );
    print_report(&out.final_report);
    Ok(())
}

fn cmd_mpc(args: &Args) -> Result<(), String> {
    let config = config_from(args)?;
    let len = args.usize_or("len", 4)?;
    println!("mpc: n = {}, XOR over {len}-byte private inputs", config.n);
    let inputs: Vec<Vec<u8>> = (0..config.n)
        .map(|i| (0..len).map(|j| (i * 31 + j) as u8).collect())
        .collect();
    let out = run_mpc(&SnarkSrds::with_defaults(), &config, &inputs, |map| {
        let mut acc = vec![0u8; len];
        for v in map.values() {
            for (a, b) in acc.iter_mut().zip(v) {
                *a ^= b;
            }
        }
        acc
    });
    println!("  inputs included:   {}/{}", out.inputs_included, config.n);
    println!("  output:            {:02x?}", out.output);
    println!(
        "  delivered to:      {}/{} parties",
        out.outputs.iter().flatten().count(),
        config.n
    );
    print_report(&out.report);
    Ok(())
}

fn cmd_srds(args: &Args) -> Result<(), String> {
    let n = args.usize_or("n", 300)?;
    if n < 12 {
        return Err(format!("--n {n}: need at least 12 SRDS parties"));
    }
    let t = args.usize_or("t", n / 10)?;
    if 3 * t >= n {
        return Err(format!("t = {t} must be below n/3 = {}", n / 3));
    }
    let scheme_name = args.str_or("scheme", "snark");
    println!("SRDS security games: n = {n}, t = {t}, scheme = {scheme_name}");
    let (robust, forged, cert) = match scheme_name.as_str() {
        "snark" => {
            let s = SnarkSrds::with_defaults();
            let r = run_robustness(&s, n, t, &mut DefaultRobustnessAdversary, b"cli")
                .map_err(|e| e.to_string())?;
            let f = run_forgery(&s, n, t, &mut AggregateForgeryAdversary::default(), b"cli")
                .map_err(|e| e.to_string())?;
            (r.verified, f.forged, r.root_signature_len)
        }
        "owf" => {
            let s = OwfSrds::with_defaults();
            let r = run_robustness(&s, n, t, &mut DefaultRobustnessAdversary, b"cli")
                .map_err(|e| e.to_string())?;
            let f = run_forgery(&s, n, t, &mut AggregateForgeryAdversary::default(), b"cli")
                .map_err(|e| e.to_string())?;
            (r.verified, f.forged, r.root_signature_len)
        }
        other => return Err(format!("unknown scheme {other} (snark|owf)")),
    };
    println!("  Fig.1 robustness:  verified = {robust} (expect true)");
    println!("  Fig.2 forgery:     forged = {forged} (expect false)");
    println!("  certificate:       {} bytes", cert.unwrap_or(0));
    if robust && !forged {
        Ok(())
    } else {
        Err("security game failed".into())
    }
}

fn cmd_isolation(args: &Args) -> Result<(), String> {
    let n = args.usize_or("n", 300)?;
    let t = args.usize_or("t", 90)?;
    let k = args.usize_or("k", 8)?;
    if 3 * t >= n {
        return Err(format!("t = {t} must be below n/3 = {}", n / 3));
    }
    if k >= n {
        return Err(format!("--k {k} must be below n = {n} (o(n) messages)"));
    }
    println!("isolation attack: n = {n}, t = {t}, k = {k}");
    let crs = isolation_attack_crs(n, t, k, b"cli");
    println!(
        "  CRS model:   victim saw {} honest vs {} adversarial -> fooled = {}",
        crs.honest_msgs, crs.adversarial_msgs, crs.victim_fooled
    );
    let srds = isolation_attack_with_srds(&OwfSrds::with_defaults(), n, t, k, b"cli");
    println!(
        "  with SRDS:   {} verified certificates, {} forged -> fooled = {}",
        srds.honest_msgs, srds.adversarial_msgs, srds.victim_fooled
    );
    Ok(())
}
