//! A blockchain-flavoured scenario: a large validator set finalizes a chain
//! of blocks with **amortized polylog communication per validator**.
//!
//! Each "block" is one certified round over a single established session
//! (Corollary 1.2(1)): the proposer ships its bit (think: block hash vote)
//! to the supreme committee, the committee agrees, and the SRDS certificate
//! — a few dozen bytes — convinces every validator. This is exactly the
//! workload the paper's introduction motivates: repeated consensus where no
//! validator can afford Θ(n) bandwidth.
//!
//! ```sh
//! cargo run --release --example blockchain_committee
//! ```

use pba_srds::snark::{SnarkSrds, SnarkSrdsConfig};
use polylog_ba::prelude::*;

fn main() {
    let n = 256;
    let t = 20;
    let blocks: Vec<u8> = vec![1, 0, 1, 1, 0, 1, 0, 0];

    // MSS keys need one one-time slot per block: height >= log2(#blocks).
    let scheme = SnarkSrds::new(SnarkSrdsConfig {
        mss_bits: 32,
        mss_height: 3,
    });
    let mut config = BaConfig::byzantine(n, t, b"chain-demo");
    config.profile = AdversaryProfile::Byzantine;

    println!(
        "== validator set n = {n}, t = {t} Byzantine, {} blocks ==\n",
        blocks.len()
    );
    let proposer = PartyId(17);
    let outcome = run_broadcasts(&scheme, &config, proposer, &blocks);

    assert!(outcome.all_delivered, "a block failed to finalize");
    for (height, exec) in outcome.executions.iter().enumerate() {
        println!(
            "block {height}: vote = {}, certificate = {} bytes",
            exec.y,
            exec.certificate_len.unwrap_or(0)
        );
    }

    let setup = outcome.setup_report.max_bytes_per_party;
    let final_max = outcome.final_report.max_bytes_per_party;
    println!("\nsetup cost (max bytes/validator):      {setup}");
    println!(
        "after {} blocks (max bytes/validator): {final_max}",
        blocks.len()
    );
    println!(
        "amortized per block (max bytes/validator): {:.0}",
        outcome.amortized_max_bytes_per_party()
    );
    let a2a = all_to_all_ba(n, 0, 1).max_bytes_per_party;
    println!(
        "\nfor comparison, one all-to-all BA at this size costs each validator \
         {a2a} bytes.\nAt n = {n} the polylog machinery's poly(kappa) constants still \
         dominate;\nwhat scales is the growth exponent (all-to-all grows ~n^2 per \
         validator,\nthis pipeline ~log^2 n — see `cargo run -p pba-bench --bin table1`) \
         and the\nconstant 121-byte certificate every validator stores per block."
    );
}
