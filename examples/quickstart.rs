//! Quickstart: run balanced Byzantine agreement with both SRDS schemes and
//! print the communication report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use polylog_ba::prelude::*;

fn main() {
    let n = 128;
    let t = 12;

    println!("== polylog-ba quickstart: n = {n}, t = {t} Byzantine ==\n");

    // Inputs: everyone starts with 1 — validity requires the output be 1.
    let inputs = vec![1u8; n];

    // --- OWF / trusted-PKI SRDS (Theorem 2.7) ---
    let owf = OwfSrds::with_defaults();
    let config = BaConfig::byzantine(n, t, b"quickstart-owf");
    let outcome = run_ba(&owf, &config, &inputs);
    print_outcome("OWF + trusted PKI", &outcome);

    // --- CRH + SNARK / bare-PKI SRDS (Theorem 2.8) ---
    let snark = SnarkSrds::with_defaults();
    let config = BaConfig::byzantine(n, t, b"quickstart-snark");
    let outcome = run_ba(&snark, &config, &inputs);
    print_outcome("SNARK + bare PKI", &outcome);
}

fn print_outcome(label: &str, outcome: &BaOutcome) {
    println!("--- {label} ---");
    println!("  agreement: {}", outcome.agreement);
    println!(
        "  output:    {:?} (validity: {})",
        outcome.output, outcome.validity
    );
    println!(
        "  certificate size: {} bytes",
        outcome.certificate_len.unwrap_or(0)
    );
    println!(
        "  max bytes/party: {}  (total: {}, rounds: {}, locality: {})",
        outcome.report.max_bytes_per_party,
        outcome.report.total_bytes,
        outcome.report.rounds,
        outcome.report.max_locality
    );
    println!("  per-step breakdown (total honest bytes):");
    for step in &outcome.steps {
        println!("    {:<28} {:>12}", step.label, step.total_bytes);
    }
    println!();
}
