//! The lower-bound intuition, live (Theorems 1.3/1.4): a single-round boost
//! with `o(n)` messages per party fails in the CRS model — the adversary
//! floods the isolated party — and an SRDS certificate repairs it.
//!
//! ```sh
//! cargo run --release --example isolation_attack
//! ```

use pba_core::lowerbound::{isolation_attack_crs, isolation_attack_with_srds};
use polylog_ba::prelude::*;

fn main() {
    let n = 300;
    let t = 90;

    println!("== isolation attack on a one-shot boost (n = {n}, t = {t}) ==\n");
    println!("honest parties each send their value to k random peers;");
    println!("all {t} corrupt parties flood the isolated victim with the flipped value.\n");

    println!("--- CRS model (no PKI): messages are indistinguishable ---");
    for k in [4usize, 8, 16, 64, 250] {
        let out = isolation_attack_crs(n, t, k, b"demo");
        println!(
            "  k = {k:>3}: victim saw {:>3} honest vs {:>3} adversarial -> fooled: {}",
            out.honest_msgs, out.adversarial_msgs, out.victim_fooled
        );
    }
    println!("  (only k = Θ(n) saves the victim — exactly what Theorem 1.3 predicts)\n");

    println!("--- With SRDS certificates (PKI + OWF, Theorem 1.4's assumptions) ---");
    let scheme = OwfSrds::with_defaults();
    for k in [4usize, 8] {
        let out = isolation_attack_with_srds(&scheme, n, t, k, b"demo");
        println!(
            "  k = {k:>3}: victim verified {:>3} honest certificates, {} forged -> fooled: {}",
            out.honest_msgs, out.adversarial_msgs, out.victim_fooled
        );
    }
    println!("\nthe sub-third coalition cannot certify the flipped value: one");
    println!("verified certificate outweighs any number of floods.");
}
