//! The §1.2 connection: average-case SNARGs for the generalized subset
//! task (Subset-Sum / Subset-Product over `F_{2^61−1}`).
//!
//! The paper shows that building SRDS from multisignatures in weak PKI
//! models would *yield* succinct arguments for exactly these NP-complete
//! problems — a barrier against "SNARG-free" constructions. This example
//! samples planted average-case instances and shows the proof-size
//! separation such a SNARG achieves.
//!
//! ```sh
//! cargo run --release --example subset_snarg
//! ```

use pba_snark::subset::{prove_with_sizes, subset_snarg, SubsetInstance, SubsetOp};
use pba_snark::system::SnarkCrs;
use polylog_ba::prelude::*;

fn main() {
    let mut prg = Prg::from_seed_bytes(b"subset-demo");
    let snarg = subset_snarg(SnarkCrs::setup(b"subset-crs"));

    println!("== average-case SNARGs for the generalized subset task ==\n");
    for op in [SubsetOp::Sum, SubsetOp::Product] {
        println!("--- {op} ---");
        for k in [16usize, 64, 256, 1024, 4096] {
            let (instance, witness) = SubsetInstance::sample_planted(op, k, &mut prg);
            let (proof, witness_bits, proof_bytes) =
                prove_with_sizes(&snarg, &instance, &witness).expect("planted witness");
            assert!(snarg.verify(&instance, &proof));
            println!(
                "  k = {k:>5}: witness = {witness_bits:>5} bits, proof = {proof_bytes} bytes \
                 (compression x{:.1})",
                witness_bits as f64 / (proof_bytes * 8) as f64
            );
        }
    }

    // Small instances are solvable exhaustively — the SNARG does not make
    // the problem easy, only the *proof* short.
    let (instance, _) = SubsetInstance::sample_planted(SubsetOp::Sum, 20, &mut prg);
    let solved = instance
        .solve_exhaustive()
        .expect("planted instance solvable");
    assert!(instance.check(&solved));
    println!("\nexhaustive solver cross-check on k = 20: ok");
}
