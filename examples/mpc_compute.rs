//! The MPC corollary (Cor. 1.2(2)) in action: a large set of parties
//! computes a joint statistic over private inputs — here, the sum and
//! maximum of private sensor readings — with total communication
//! `n · polylog(n) · poly(κ) · (ℓin + ℓout)` and certified delivery of the
//! output to everyone.
//!
//! ```sh
//! cargo run --release --example mpc_compute
//! ```

use pba_core::mpc::run_mpc;
use polylog_ba::prelude::*;
use std::collections::BTreeMap;

fn main() {
    let n = 128;
    let t = 10;
    println!("== FHE-based MPC over pi_ba: n = {n}, t = {t} Byzantine ==\n");

    // Private inputs: each party holds a 2-byte sensor reading.
    let inputs: Vec<Vec<u8>> = (0..n)
        .map(|i| {
            let reading = (37 * i as u64 % 1000) as u16;
            reading.to_le_bytes().to_vec()
        })
        .collect();

    // The public functional: (sum, max) over included readings.
    let stats = |map: &BTreeMap<u64, Vec<u8>>| -> Vec<u8> {
        let readings: Vec<u16> = map
            .values()
            .filter(|v| v.len() == 2)
            .map(|v| u16::from_le_bytes([v[0], v[1]]))
            .collect();
        let sum: u64 = readings.iter().map(|&r| r as u64).sum();
        let max = readings.iter().copied().max().unwrap_or(0);
        let mut out = sum.to_le_bytes().to_vec();
        out.extend_from_slice(&max.to_le_bytes());
        out
    };

    let scheme = SnarkSrds::with_defaults();
    let config = BaConfig::byzantine(n, t, b"mpc-example");
    let outcome = run_mpc(&scheme, &config, &inputs, stats);

    let sum = u64::from_le_bytes(outcome.output[..8].try_into().unwrap());
    let max = u16::from_le_bytes(outcome.output[8..10].try_into().unwrap());
    println!("inputs included:   {}/{n}", outcome.inputs_included);
    println!("computed sum:      {sum}");
    println!("computed max:      {max}");
    println!(
        "output certificate: {} bytes",
        outcome.certificate_len.unwrap_or(0)
    );
    println!(
        "total communication: {} bytes ({} per party on average)",
        outcome.report.total_bytes,
        outcome.report.total_bytes / n as u64
    );
    let delivered = outcome.outputs.iter().flatten().count();
    println!("parties with certified output: {delivered}/{n}");
    assert!(delivered >= n - t, "delivery failed");
    println!("\nno party — including the supreme committee — saw any individual reading:");
    println!("inputs travel encrypted, merge homomorphically, and only the");
    println!("threshold-decrypted public output leaves the committee.");
}
