//! Direct SRDS usage: establish a PKI, sign, aggregate up a tree in
//! polylog batches, verify — and compare certificate sizes across the two
//! paper constructions and the multisignature baseline.
//!
//! This demonstrates the crux of the paper: multisignatures aggregate
//! succinctly but their *verifiable* form needs the Θ(n) contributor set,
//! while SRDS certificates stay Õ(1).
//!
//! ```sh
//! cargo run --release --example srds_certificates
//! ```

use polylog_ba::prelude::*;

fn certificate_size<S: Srds>(scheme: &S, n: usize, label: &str) {
    let mut prg = Prg::from_seed_bytes(b"certificates-demo");
    let board = PkiBoard::establish(scheme, n, &mut prg);
    let keys = board.prepare(scheme);
    let message = b"state-root:0xabc123";

    // Everyone signs.
    let sigs: Vec<S::Signature> = (0..n as u64)
        .filter_map(|i| scheme.sign(&board.pp, i, &board.sks[i as usize], message))
        .collect();

    // Aggregate the way the protocol does: leaf batches, then joins.
    let batch = 16;
    let leaf_aggs: Vec<S::Signature> = sigs
        .chunks(batch)
        .filter_map(|chunk| scheme.aggregate(&board.pp, &keys, message, chunk))
        .collect();
    let root = scheme
        .aggregate(&board.pp, &keys, message, &leaf_aggs)
        .expect("root certificate");

    assert!(scheme.verify(&board.pp, &keys, message, &root));
    println!(
        "{label:<24} n = {n:>5}: certificate = {:>7} bytes  (mode: {})",
        scheme.signature_len(&root),
        scheme.mode()
    );
}

fn main() {
    println!("== SRDS certificate sizes: who pays for the signer set? ==\n");
    for n in [64usize, 256, 1024] {
        certificate_size(&OwfSrds::with_defaults(), n, "OWF sortition SRDS");
        certificate_size(&SnarkSrds::with_defaults(), n, "SNARK/PCD SRDS");
        certificate_size(&MultisigSrds::with_defaults(), n, "multisig baseline");
        println!();
    }
    println!(
        "note: the multisig certificate grows by n/8 bytes per step — the \
         Θ(n) signer bitmap the paper's SRDS eliminates. The OWF certificate \
         is polylog (sortition keeps the signer count ~log n); the SNARK \
         certificate is constant."
    );
}
