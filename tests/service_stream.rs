//! ISSUE 9: the Service/Instance split and the pipelined decision
//! stream.
//!
//! * **Transcript identity** — the first instance of a stream is
//!   byte-identical (chained delivery-transcript digest) to a single-shot
//!   [`try_run_ba_over`] at the same `(seed, config)`, for both Charged
//!   and Interactive establishment.
//! * **Mode equivalence** — pipelined and sequential streams reach the
//!   same verdicts with the same deliveries; pipelining only hides round
//!   latency (`overlapped_rounds > 0`, strictly fewer clock rounds).
//! * **Cross-instance cache reuse** — certificate-cache hits on entries
//!   born in an earlier instance are strictly positive from instance 2
//!   onward (SNARK and multisig schemes) and exactly zero for a cold
//!   single-shot run.
//! * **Leaf budgeting** — a stream outliving the establishment's MSS
//!   capacity ends with a structured [`ProtocolError::KeyBudget`] naming
//!   the failing instance; it never panics.

use pba_core::protocol::{
    try_run_ba_over, AdversaryProfile, BaConfig, Establishment, KeyError, ProtocolError, Service,
    StreamMode, StreamOutcome,
};
use pba_crypto::codec::{Decode, Encode};
use pba_net::corruption::CorruptionPlan;
use pba_net::LocalTransport;
use pba_srds::multisig::{MultisigConfig, MultisigSrds};
use pba_srds::snark::{SnarkSrds, SnarkSrdsConfig};
use pba_srds::traits::Srds;

fn config(n: usize, establishment: Establishment) -> BaConfig {
    BaConfig {
        n,
        z: 2,
        corruption: CorruptionPlan::Random { t: n / 8 },
        profile: AdversaryProfile::Byzantine,
        seed: b"service-stream".to_vec(),
        establishment,
        chaos: None,
        threads: 1,
        key_policy: pba_core::protocol::KeyPolicy::Eager,
        dense_shadow: false,
    }
}

/// A SNARK scheme with 2^3 = 8 one-time epoch slots.
fn snark_deep() -> SnarkSrds {
    SnarkSrds::new(SnarkSrdsConfig {
        mss_bits: 32,
        mss_height: 3,
    })
}

fn bit_instances(n: usize, k: usize) -> Vec<Vec<Vec<u8>>> {
    vec![vec![vec![1u8]; n]; k]
}

fn stream<'a, S>(
    scheme: &'a S,
    cfg: &BaConfig,
    k: usize,
    mode: StreamMode,
) -> (StreamOutcome, Service<'a, S>)
where
    S: Srds,
    S::Signature: Encode + Decode,
{
    let mut service =
        Service::try_establish_over(scheme, cfg, Some(Box::new(LocalTransport::new())))
            .expect("establishment");
    let out = service.try_run_stream(&bit_instances(cfg.n, k), mode);
    (out, service)
}

#[test]
fn streamed_first_instance_is_transcript_identical_to_single_shot() {
    for establishment in [Establishment::Charged, Establishment::Interactive] {
        let cfg = config(64, establishment);
        let scheme = snark_deep();

        let single = try_run_ba_over(
            &scheme,
            &cfg,
            &vec![1u8; cfg.n],
            Box::new(LocalTransport::new()),
        );
        let single_digest = single
            .final_digest()
            .expect("single-shot run has a transcript");

        for mode in [StreamMode::Sequential, StreamMode::Pipelined] {
            let (out, _service) = stream(&snark_deep(), &cfg, 3, mode);
            assert_eq!(out.decisions, 3, "{establishment:?} {mode:?}");
            let first = out.instances[0]
                .report
                .transcript_digest
                .expect("transport attached");
            assert_eq!(
                first, single_digest,
                "{establishment:?} {mode:?}: streamed instance 1 diverged from single-shot"
            );
        }
    }
}

#[test]
fn pipelined_stream_matches_sequential_and_hides_rounds() {
    let cfg = config(64, Establishment::Charged);
    let (seq, _s1) = stream(&snark_deep(), &cfg, 4, StreamMode::Sequential);
    let (pipe, _s2) = stream(&snark_deep(), &cfg, 4, StreamMode::Pipelined);

    assert_eq!(seq.decisions, 4);
    assert_eq!(pipe.decisions, 4);
    for (a, b) in seq.instances.iter().zip(&pipe.instances) {
        let (va, vb) = (
            a.result.as_ref().expect("sequential instance decided"),
            b.result.as_ref().expect("pipelined instance decided"),
        );
        assert_eq!(va.value, vb.value, "instance {} values diverge", a.index);
        assert_eq!(
            va.outputs, vb.outputs,
            "instance {} outputs diverge",
            a.index
        );
        // Deliveries are identical — pipelining reorders nothing, it only
        // re-books the rounds — so the chained digests must agree too.
        assert_eq!(
            a.report.transcript_digest, b.report.transcript_digest,
            "instance {} transcripts diverge",
            a.index
        );
    }
    assert_eq!(seq.overlapped_rounds, 0);
    assert!(
        pipe.overlapped_rounds > 0,
        "pipelining hid no certification rounds"
    );
    assert!(
        pipe.total_rounds < seq.total_rounds,
        "pipelined stream not faster in rounds: {} vs {}",
        pipe.total_rounds,
        seq.total_rounds
    );
    assert_eq!(
        pipe.total_rounds + pipe.overlapped_rounds,
        seq.total_rounds,
        "every hidden round must be accounted for"
    );
}

/// Warm hits — cache hits on entries born in an earlier instance — are
/// the cross-instance reuse the Service keeps and independent runs lose.
fn assert_warm_reuse<S>(scheme: &S, label: &str)
where
    S: Srds,
    S::Signature: Encode + Decode,
{
    let cfg = config(64, Establishment::Charged);
    let mut service = Service::try_establish(scheme, &cfg).expect("establishment");
    let out = service.try_run_stream(&bit_instances(cfg.n, 3), StreamMode::Sequential);
    assert_eq!(out.decisions, 3, "{label}");
    for inst in &out.instances {
        let cache = inst
            .report
            .cache
            .as_ref()
            .unwrap_or_else(|| panic!("{label}: scheme exposes no cache stats"));
        if inst.index == 0 {
            assert_eq!(
                cache.warm_hits, 0,
                "{label}: instance 1 has no predecessor to reuse"
            );
        } else {
            assert!(
                cache.warm_hits > 0,
                "{label}: instance {} saw no cross-instance cache reuse",
                inst.index + 1
            );
        }
    }
}

#[test]
fn cert_cache_reuse_is_warm_across_instances_snark() {
    assert_warm_reuse(&snark_deep(), "snark");
}

#[test]
fn cert_cache_reuse_is_warm_across_instances_multisig() {
    assert_warm_reuse(
        &MultisigSrds::new(MultisigConfig {
            mss_bits: 32,
            mss_height: 3,
        }),
        "multisig",
    );
}

fn cold_warm_hits<S>(scheme: &S, label: &str) -> u64
where
    S: Srds,
    S::Signature: Encode + Decode,
{
    let cfg = config(64, Establishment::Charged);
    let mut service = Service::try_establish(scheme, &cfg).expect("establishment");
    let out = service.try_run_stream(&bit_instances(cfg.n, 1), StreamMode::Sequential);
    assert_eq!(out.decisions, 1, "{label}");
    scheme
        .cache_stats()
        .unwrap_or_else(|| panic!("{label}: scheme exposes no cache stats"))
        .warm_hits
}

#[test]
fn cold_single_shot_run_has_zero_warm_hits() {
    assert_eq!(
        cold_warm_hits(&SnarkSrds::with_defaults(), "snark"),
        0,
        "snark: cold run showed warm hits"
    );
    assert_eq!(
        cold_warm_hits(&MultisigSrds::with_defaults(), "multisig"),
        0,
        "multisig: cold run showed warm hits"
    );
}

#[test]
fn budget_exhaustion_names_the_failing_instance() {
    // Default height-1 MSS tree: 2 one-time epoch slots; the third
    // instance must be refused, structurally, in both modes.
    for mode in [StreamMode::Sequential, StreamMode::Pipelined] {
        let scheme = SnarkSrds::with_defaults();
        let cfg = config(64, Establishment::Charged);
        let mut service = Service::try_establish(&scheme, &cfg).expect("establishment");
        let out = service.try_run_stream(&bit_instances(cfg.n, 4), mode);
        assert_eq!(
            out.decisions, 2,
            "{mode:?}: capacity-2 scheme decides twice"
        );
        assert_eq!(
            out.instances.len(),
            3,
            "{mode:?}: the refusal ends the stream"
        );
        let refused = &out.instances[2];
        match &refused.result {
            Err(ProtocolError::KeyBudget {
                error: KeyError::BudgetExhausted { instance, capacity },
            }) => {
                assert_eq!(*instance, 2, "{mode:?}: wrong instance named");
                assert_eq!(*capacity, 2, "{mode:?}");
            }
            other => panic!("{mode:?}: expected a budget refusal, got {other:?}"),
        }
        let display = refused.result.as_ref().unwrap_err().to_string();
        assert!(
            display.contains("instance 2"),
            "{mode:?}: display must name the failing instance: {display}"
        );
        let budget = service.budget().expect("snark scheme has a budget");
        assert_eq!(budget.remaining(), 0, "{mode:?}");
    }
}

#[test]
fn multi_value_payloads_reach_agreement() {
    let scheme = snark_deep();
    let cfg = config(64, Establishment::Charged);
    let mut service = Service::try_establish(&scheme, &cfg).expect("establishment");
    // Unanimous 5-byte honest input: validity must force it through.
    let value = b"hello".to_vec();
    let instances = vec![vec![value.clone(); cfg.n]; 2];
    let out = service.try_run_stream(&instances, StreamMode::Pipelined);
    assert_eq!(out.decisions, 2);
    for inst in &out.instances {
        let mv = inst.result.as_ref().expect("instance decided");
        assert_eq!(mv.value, value, "validity: unanimous input must win");
        assert!(mv.agreement && mv.validity);
        assert!(mv.certificate_len.is_some());
    }
}
