//! Wire-protocol integration suite: encode/decode roundtrips for every
//! registered typed message, negative decoding at the single hardened
//! entry point, the golden tag-registry snapshot, structure-aware
//! mutation properties, and exact per-tag byte conservation over full
//! `π_ba` runs.

use polylog_ba::prelude::*;

use pba_core::baselines::{SampleQuery, SampleResponse};
use pba_core::broadcast::BroadcastInput;
use pba_core::coin::CoinMsg;
use pba_core::dolev_strong::DsMessage;
use pba_core::phase_king::PkMsg;
use pba_core::protocol::{Certificate, MvInput, ValueSeed};
use pba_core::vss_coin::VssCoinMsg;
use pba_crypto::field::Fp;
use pba_net::wire::{self, step, tag, WireError, HEADER_LEN, MAX_WIRE_BYTES, REGISTRY};
use proptest::prelude::*;

fn roundtrip<T: WireMsg + PartialEq + std::fmt::Debug>(msg: T) {
    let bytes = wire::encode_msg(&msg);
    assert_eq!(
        bytes.len(),
        wire::encoded_msg_len(&msg),
        "encoded_msg_len disagrees with encode_msg for {msg:?}"
    );
    assert_eq!(bytes[0], T::TAG, "header tag for {msg:?}");
    assert_eq!(bytes[1], T::STEP, "header step for {msg:?}");
    let back: T = wire::decode_msg(&bytes).expect("roundtrip decode");
    assert_eq!(back, msg);
}

/// Every registered message type survives an encode → decode roundtrip
/// through the hardened entry point, covering every enum variant.
#[test]
fn every_registered_message_type_roundtrips() {
    roundtrip(PkMsg::Value(7u8));
    roundtrip(PkMsg::Propose(1u8));
    roundtrip(PkMsg::King(0u8));
    roundtrip(PkMsg::Value(Digest([0xab; 32])));
    roundtrip(PkMsg::Propose(Digest::ZERO));
    roundtrip(PkMsg::King(Digest([1; 32])));
    roundtrip(CoinMsg::Commit(Digest([3; 32])));
    roundtrip(CoinMsg::Echo(vec![
        (PartyId(0), Digest([4; 32])),
        (PartyId(300), Digest::ZERO),
    ]));
    roundtrip(CoinMsg::Reveal([5; 32], [6; 32]));
    roundtrip(VssCoinMsg::Deal(Fp::new(12345)));
    roundtrip(VssCoinMsg::Echo(vec![(0, Fp::ZERO), (9, Fp::new(77))]));
    roundtrip(DsMessage {
        value: 1,
        chain: Vec::new(),
    });
    roundtrip(ValueSeed {
        epoch: 3,
        value: vec![1, 2, 3],
        seed: Digest([9; 32]),
    });
    roundtrip(Certificate {
        epoch: 0,
        value: vec![1],
        seed: Digest::ZERO,
        sig: vec![0xcc; 40],
    });
    roundtrip(SampleQuery { nonce: u64::MAX });
    roundtrip(SampleResponse { value: 1 });
    roundtrip(BroadcastInput { value: 0 });
    roundtrip(MvInput {
        epoch: 2,
        value: vec![0xde, 0xad, 0xbe, 0xef],
    });
}

/// The hardened decoder rejects every malformed shape with the specific
/// error for the first failed check.
#[test]
fn hardened_decoder_rejects_malformed_payloads() {
    let good = wire::encode_msg(&ValueSeed {
        epoch: 5,
        value: vec![1, 2],
        seed: Digest([8; 32]),
    });

    // Shorter than the header.
    assert_eq!(wire::decode_msg::<ValueSeed>(&[]), Err(WireError::TooShort));
    assert_eq!(
        wire::decode_msg::<ValueSeed>(&good[..1]),
        Err(WireError::TooShort)
    );

    // Over the wire cap (checked before anything else).
    let huge = vec![0u8; MAX_WIRE_BYTES + 1];
    assert_eq!(
        wire::decode_msg::<ValueSeed>(&huge),
        Err(WireError::OverCap(MAX_WIRE_BYTES + 1))
    );

    // Unknown tag.
    let mut unknown = good.clone();
    unknown[0] = 0xee;
    assert_eq!(
        wire::decode_msg::<ValueSeed>(&unknown),
        Err(WireError::UnknownTag(0xee))
    );

    // Registered tag, but not the expected message's.
    let cert = wire::encode_msg(&Certificate {
        epoch: 5,
        value: vec![1, 2],
        seed: Digest([8; 32]),
        sig: vec![3],
    });
    assert_eq!(
        wire::decode_msg::<ValueSeed>(&cert),
        Err(WireError::WrongTag {
            expected: tag::VALUE_SEED,
            found: tag::CERTIFICATE,
        })
    );

    // Step byte contradicting the registry.
    let mut wrong_step = good.clone();
    wrong_step[1] = step::SPREAD;
    assert_eq!(
        wire::decode_msg::<ValueSeed>(&wrong_step),
        Err(WireError::WrongStep {
            expected: step::DISSEMINATE,
            found: step::SPREAD,
        })
    );

    // Truncated body.
    assert!(matches!(
        wire::decode_msg::<ValueSeed>(&good[..good.len() - 1]),
        Err(WireError::Body(_))
    ));

    // Trailing byte after a complete body.
    let mut trailing = good.clone();
    trailing.push(0);
    assert!(matches!(
        wire::decode_msg::<ValueSeed>(&trailing),
        Err(WireError::Body(_))
    ));

    // The original still decodes, so the rejections above are not
    // artifacts of a broken fixture.
    assert!(wire::decode_msg::<ValueSeed>(&good).is_ok());
}

/// Golden snapshot of the tag registry. Tags are a compatibility surface:
/// **appending** a row is fine (extend the snapshot), renumbering or
/// re-stepping an existing tag must fail this test.
#[test]
fn tag_registry_golden_snapshot() {
    let rendered: Vec<String> = REGISTRY
        .iter()
        .map(|info| {
            format!(
                "{:#04x} {} step={} {} {}",
                info.tag, info.name, info.step, info.step_label, info.crate_name
            )
        })
        .collect();
    let expected = [
        "0x00 raw step=0 untyped pba-net",
        "0x01 PkMsg<u8> step=2 2:committee-ba pba-core",
        "0x02 PkMsg<Digest> step=2 2:committee-ba pba-core",
        "0x03 CoinMsg step=2 2:committee-ba pba-core",
        "0x04 VssCoinMsg step=2 2:committee-ba pba-core",
        "0x05 DsMessage step=0 baseline pba-core",
        "0x06 ValueSeed step=3 3:disseminate pba-core",
        "0x07 Certificate step=6 6:certify pba-core",
        "0x08 sig-submit step=4 4:sig-submit pba-core",
        "0x09 aggr-share step=5 5:aggregate pba-core",
        "0x0a aggr-mpc step=5 5:aggregate pba-core",
        "0x0b spread step=7 7-8:spread pba-core",
        "0x0c establish step=1 1:establish pba-aetree",
        "0x0d fanin step=0 tree-fanin pba-aetree",
        "0x0e SampleQuery step=0 baseline pba-core",
        "0x0f SampleResponse step=0 baseline pba-core",
        "0x10 BroadcastInput step=0 bcast-input pba-core",
        "0x11 MvInput step=0 mv-input pba-core",
    ];
    assert_eq!(
        rendered, expected,
        "tag registry drifted — appending rows is fine (extend the \
         snapshot), renumbering existing tags is not"
    );
    // The WireMsg impls must agree with the registry rows they claim.
    for (t, s) in [
        (PkMsg::<u8>::TAG, PkMsg::<u8>::STEP),
        (PkMsg::<Digest>::TAG, PkMsg::<Digest>::STEP),
        (CoinMsg::TAG, CoinMsg::STEP),
        (VssCoinMsg::TAG, VssCoinMsg::STEP),
        (DsMessage::TAG, DsMessage::STEP),
        (ValueSeed::TAG, ValueSeed::STEP),
        (Certificate::TAG, Certificate::STEP),
        (SampleQuery::TAG, SampleQuery::STEP),
        (SampleResponse::TAG, SampleResponse::STEP),
        (BroadcastInput::TAG, BroadcastInput::STEP),
        (MvInput::TAG, MvInput::STEP),
    ] {
        let info = wire::lookup(t).expect("WireMsg tag not in registry");
        assert_eq!(info.step, s, "WireMsg STEP disagrees with registry");
    }
}

/// `peek_tag` classifies typed headers and falls back to raw for
/// everything else.
#[test]
fn peek_tag_classifies_headers() {
    let vs = wire::encode_msg(&ValueSeed {
        epoch: 1,
        value: vec![0],
        seed: Digest::ZERO,
    });
    assert_eq!(wire::peek_tag(&vs), tag::VALUE_SEED);
    assert_eq!(wire::peek_tag(&[]), tag::RAW);
    assert_eq!(wire::peek_tag(&[tag::VALUE_SEED]), tag::RAW);
    // Registered tag but contradictory step byte → raw.
    assert_eq!(wire::peek_tag(&[tag::VALUE_SEED, step::SPREAD]), tag::RAW);
    assert_eq!(wire::peek_tag(&[0xee, 0x00, 0x01]), tag::RAW);
}

/// The scratch-reuse send paths (`Ctx::send` / `Ctx::send_msg` encoding
/// into a per-backend reusable buffer) stage envelopes byte-for-byte
/// identical to fresh-`Vec` encoding, on both the direct and the buffered
/// backend, across interleaved messages of different types and lengths.
#[test]
fn scratch_reuse_sends_byte_identical_envelopes() {
    use pba_net::{Ctx, RoundEffects};

    // The reference payloads, each encoded into its own fresh Vec.
    let msgs: Vec<Vec<u8>> = vec![
        wire::encode_msg(&PkMsg::Value(7u8)),
        wire::encode_msg(&CoinMsg::Commit(Digest([3; 32]))),
        wire::encode_msg(&ValueSeed {
            epoch: 3,
            value: vec![1, 2, 3, 4, 5, 6, 7, 8, 9],
            seed: Digest([9; 32]),
        }),
        wire::encode_msg(&PkMsg::King(Digest([1; 32]))),
    ];

    // Interleave typed sends of very different sizes so stale scratch
    // bytes from a longer message would corrupt a later shorter one if
    // the clear / exact-size-copy discipline broke.
    let script = |ctx: &mut Ctx<'_>| {
        ctx.send_msg(PartyId(1), &PkMsg::Value(7u8));
        ctx.send_msg(PartyId(1), &CoinMsg::Commit(Digest([3; 32])));
        ctx.send_msg(
            PartyId(1),
            &ValueSeed {
                epoch: 3,
                value: vec![1, 2, 3, 4, 5, 6, 7, 8, 9],
                seed: Digest([9; 32]),
            },
        );
        ctx.send_msg(PartyId(1), &PkMsg::King(Digest([1; 32])));
    };

    // Direct backend: the scratch lives in the Network.
    let mut direct = Network::new(2);
    script(&mut direct.ctx(PartyId(0), 0));

    // Buffered backend (the threaded round engine's path): the scratch
    // lives in the worker's RoundEffects, replayed via apply_effects.
    let mut buffered = Network::new(2);
    let mut fx = RoundEffects::new();
    script(&mut Ctx::buffered(PartyId(0), 0, 2, &mut fx));
    buffered.apply_effects(fx);

    for net in [&mut direct, &mut buffered] {
        let staged = net.take_staged();
        assert_eq!(staged.len(), msgs.len());
        for (env, fresh) in staged.iter().zip(&msgs) {
            assert_eq!(
                &env.payload, fresh,
                "scratch-encoded envelope differs from fresh-Vec encoding"
            );
        }
    }
}

/// Per-tag attribution sums exactly to the pre-existing per-party totals
/// over full `π_ba` runs of both Table 1 stacks, and the breakdown
/// carries every Fig. 3 step the protocol exercises.
#[test]
fn pi_ba_attribution_conserves_totals() {
    let snark = SnarkSrds::with_defaults();
    let multi = MultisigSrds::with_defaults();
    for (label, outcome) in [
        (
            "snark-honest",
            run_ba(&snark, &BaConfig::honest(64, b"wire-cons"), &[1u8; 64]),
        ),
        (
            "snark-byz",
            run_ba(
                &snark,
                &BaConfig::byzantine(96, 9, b"wire-cons-byz"),
                &[0u8; 96],
            ),
        ),
        (
            "multisig-honest",
            run_ba(&multi, &BaConfig::honest(64, b"wire-cons-m"), &[1u8; 64]),
        ),
    ] {
        assert!(outcome.agreement, "{label}: agreement failed");
        assert!(
            outcome.tags_conserved,
            "{label}: per-tag marginals drifted from per-party totals"
        );
        assert_eq!(
            outcome.breakdown.total_sent(),
            outcome.report.total_bytes,
            "{label}: breakdown does not sum to the report total"
        );
        for t in [
            tag::ESTABLISH,
            tag::VALUE_SEED,
            tag::SIG_SUBMIT,
            tag::AGGR_SHARE,
            tag::CERTIFICATE,
            tag::SPREAD,
        ] {
            assert!(
                outcome.breakdown.sent.get(&t).copied().unwrap_or(0) > 0,
                "{label}: no bytes attributed to tag {t:#04x} ({})",
                wire::lookup(t).expect("registered").name
            );
        }
        let by_step = outcome.breakdown.sent_by_step_label();
        let step_sum: u64 = by_step.iter().map(|(_, b)| b).sum();
        assert_eq!(step_sum, outcome.report.total_bytes, "{label}: step rows");
    }
}

/// The structure-aware chaos modes drive full `π_ba` runs: mutants and
/// forks are wire-valid, so they reach semantic checks — agreement and
/// attribution conservation must survive them.
#[test]
fn pi_ba_survives_structure_aware_chaos() {
    let scheme = OwfSrds::with_defaults();
    for spec in [
        StrategySpec::Garble(GarbleMode::Field),
        StrategySpec::EquivocateTyped,
    ] {
        let mut config = BaConfig::byzantine(64, 6, b"wire-chaos");
        config.chaos = Some(spec.clone());
        let outcome = run_ba(&scheme, &config, &[1u8; 64]);
        assert!(outcome.agreement, "{}: agreement failed", spec.label());
        assert!(outcome.tags_conserved, "{}: conservation", spec.label());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ValueSeed roundtrips for arbitrary field values.
    #[test]
    fn value_seed_roundtrips(
        epoch in any::<u64>(),
        value in proptest::collection::vec(any::<u8>(), 0..48),
        seed in any::<[u8; 32]>(),
    ) {
        roundtrip(ValueSeed { epoch, value, seed: Digest(seed) });
    }

    /// Certificate roundtrips for arbitrary field values.
    #[test]
    fn certificate_roundtrips(
        epoch in any::<u64>(),
        value in proptest::collection::vec(any::<u8>(), 0..32),
        seed in any::<[u8; 32]>(),
        sig in proptest::collection::vec(any::<u8>(), 0..96),
    ) {
        roundtrip(Certificate { epoch, value, seed: Digest(seed), sig });
    }

    /// CoinMsg echo vectors roundtrip for arbitrary contents.
    #[test]
    fn coin_echo_roundtrips(
        entries in proptest::collection::vec((any::<u64>(), any::<[u8; 32]>()), 0..12),
    ) {
        let msg = CoinMsg::Echo(
            entries.into_iter().map(|(p, d)| (PartyId(p), Digest(d))).collect(),
        );
        roundtrip(msg);
    }

    /// Structure-aware mutation keeps payloads wire-valid: the mutant
    /// still decodes as the same message type but carries a different
    /// value than the original.
    #[test]
    fn mutate_field_yields_wire_valid_lies(
        epoch in any::<u64>(),
        value in proptest::collection::vec(any::<u8>(), 1..32),
        seed in any::<[u8; 32]>(),
        prg_seed in any::<[u8; 8]>(),
    ) {
        let msg = ValueSeed { epoch, value, seed: Digest(seed) };
        let bytes = wire::encode_msg(&msg);
        let mut prg = Prg::from_seed_bytes(&prg_seed);
        let mutant = wire::mutate_field(&bytes, &mut prg)
            .expect("typed payload must be mutable");
        prop_assert_ne!(&mutant, &bytes, "mutation must change the payload");
        prop_assert_eq!(&mutant[..HEADER_LEN], &bytes[..HEADER_LEN]);
        let back = wire::decode_msg::<ValueSeed>(&mutant)
            .expect("mutant must stay wire-valid");
        prop_assert_ne!(back, msg, "mutant must carry a different value");
    }

    /// Mutation of untyped or attribution-only payloads is refused —
    /// there is no schema to aim at.
    #[test]
    fn mutate_field_refuses_untyped_payloads(
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        prg_seed in any::<[u8; 8]>(),
    ) {
        let mut prg = Prg::from_seed_bytes(&prg_seed);
        // Force the raw tag: whatever follows, there is no schema.
        let mut raw = payload.clone();
        if !raw.is_empty() {
            raw[0] = tag::RAW;
        }
        prop_assert_eq!(wire::mutate_field(&raw, &mut prg), None);
        // Attribution-only tags are opaque even with a valid header.
        let mut opaque = vec![tag::SPREAD, step::SPREAD];
        opaque.extend_from_slice(&payload);
        prop_assert_eq!(wire::mutate_field(&opaque, &mut prg), None);
    }

    /// Arbitrary bytes never panic the hardened decoder — they decode or
    /// reject cleanly for every registered message type.
    #[test]
    fn decoder_survives_arbitrary_bytes(
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let _ = wire::decode_msg::<PkMsg<u8>>(&payload);
        let _ = wire::decode_msg::<PkMsg<Digest>>(&payload);
        let _ = wire::decode_msg::<CoinMsg>(&payload);
        let _ = wire::decode_msg::<VssCoinMsg>(&payload);
        let _ = wire::decode_msg::<DsMessage>(&payload);
        let _ = wire::decode_msg::<ValueSeed>(&payload);
        let _ = wire::decode_msg::<Certificate>(&payload);
        let _ = wire::decode_msg::<SampleQuery>(&payload);
        let _ = wire::decode_msg::<SampleResponse>(&payload);
        let _ = wire::decode_msg::<BroadcastInput>(&payload);
        let _ = wire::decode_msg::<MvInput>(&payload);
        let _ = wire::peek_tag(&payload);
        let mut prg = Prg::from_seed_bytes(b"fuzz");
        let _ = wire::mutate_field(&payload, &mut prg);
    }
}
