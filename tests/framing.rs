//! Property-based suite for the socket transport's length-delimited
//! framing layer ([`pba_net::framing`]): envelope-batch roundtrips, torn
//! reads split at **every** byte boundary, oversized-frame rejection at
//! the cap, and garbage-prefix resynchronisation.
//!
//! The framing layer is the only part of the socket stack that parses
//! attacker-timed input (the TCP peer controls read boundaries), so its
//! contract is tested exhaustively: no input — torn, truncated, garbage,
//! or oversized — may panic, hang, or silently desynchronise the stream.

use pba_crypto::codec::write_varint;
use pba_net::framing::{frame_to_vec, Frame, FrameError, FrameReader, MAGIC, MAX_FRAME_BYTES};
use pba_net::wire::MAX_WIRE_BYTES;
use pba_net::{Envelope, PartyId};
use proptest::prelude::*;

/// Builds a transport-shaped batch — envelopes tagged with their staged
/// index, closed by a round barrier — from raw generated material.
fn batch_from(raw: &[(u64, Vec<u8>)], seq: u64) -> Vec<Frame> {
    let mut frames: Vec<Frame> = raw
        .iter()
        .enumerate()
        .map(|(i, (ids, payload))| Frame::Envelope {
            staged_idx: i as u64,
            env: Envelope {
                from: PartyId(ids % 4096),
                to: PartyId((ids >> 16) % 4096),
                payload: payload.clone(),
            },
        })
        .collect();
    frames.push(Frame::Round { seq });
    frames
}

fn encode_batch(frames: &[Frame]) -> Vec<u8> {
    let mut buf = Vec::new();
    for f in frames {
        buf.extend_from_slice(&frame_to_vec(f));
    }
    buf
}

/// Drains every currently parseable frame, asserting no errors.
fn drain_ok(reader: &mut FrameReader) -> Vec<Frame> {
    let mut out = Vec::new();
    while let Some(frame) = reader.pop().expect("clean stream") {
        out.push(frame);
    }
    out
}

/// Pops until a valid frame, the buffer runs dry, or the bound is hit —
/// used after an intentional stream error to check resynchronisation.
fn pop_until_frame(reader: &mut FrameReader, bound: usize) -> Option<Frame> {
    for _ in 0..bound {
        match reader.pop() {
            Ok(Some(frame)) => return Some(frame),
            Ok(None) => return None,
            Err(_) => continue,
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whole-buffer roundtrip: every emitted batch decodes to itself.
    #[test]
    fn batch_roundtrips(
        raw in proptest::collection::vec(
            (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..200)), 0..8),
        seq in 0u64..100,
    ) {
        let batch = batch_from(&raw, seq);
        let mut reader = FrameReader::new();
        reader.push(&encode_batch(&batch));
        prop_assert_eq!(drain_ok(&mut reader), batch);
        prop_assert_eq!(reader.resyncs(), 0);
    }

    /// Torn reads: feeding the stream one byte at a time — every byte
    /// boundary is a read boundary — yields exactly the same frames, and
    /// a `pop` between any two bytes never errors (partial frames are
    /// `Ok(None)`, not failures).
    #[test]
    fn torn_reads_at_every_byte_boundary(
        raw in proptest::collection::vec(
            (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..200)), 0..8),
        seq in 0u64..100,
    ) {
        let batch = batch_from(&raw, seq);
        let bytes = encode_batch(&batch);
        let mut reader = FrameReader::new();
        let mut seen = Vec::new();
        for b in &bytes {
            reader.push(std::slice::from_ref(b));
            seen.extend(drain_ok(&mut reader));
        }
        prop_assert_eq!(seen, batch);
        prop_assert_eq!(reader.buffered(), 0);
        prop_assert_eq!(reader.resyncs(), 0);
    }

    /// Torn reads at arbitrary chunk sizes agree with the one-shot parse.
    #[test]
    fn chunked_reads_agree(
        raw in proptest::collection::vec(
            (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..200)), 0..8),
        seq in 0u64..100,
        chunk in 1usize..17,
    ) {
        let batch = batch_from(&raw, seq);
        let bytes = encode_batch(&batch);
        let mut reader = FrameReader::new();
        let mut seen = Vec::new();
        for c in bytes.chunks(chunk) {
            reader.push(c);
            seen.extend(drain_ok(&mut reader));
        }
        prop_assert_eq!(seen, batch);
    }

    /// A frame header announcing a body over the cap is rejected as
    /// `Oversized` without consuming the rest of the stream: the reader
    /// resynchronises and recovers the following valid frame.
    #[test]
    fn oversized_header_rejected_then_resyncs(over_raw in any::<u64>(), seq in 0u64..100) {
        // A length just over the cap whose varint encoding contains no
        // magic byte — so the only resync candidate is the real frame.
        let mut over = MAX_FRAME_BYTES as u64 + 1 + over_raw % 100_000;
        loop {
            let mut v = Vec::new();
            write_varint(&mut v, over);
            if !v.contains(&MAGIC) {
                break;
            }
            over += 1;
        }
        let mut bytes = vec![MAGIC];
        write_varint(&mut bytes, over);
        bytes.extend_from_slice(&frame_to_vec(&Frame::Round { seq }));

        let mut reader = FrameReader::new();
        reader.push(&bytes);
        prop_assert_eq!(reader.pop(), Err(FrameError::Oversized { len: over }));
        prop_assert_eq!(
            pop_until_frame(&mut reader, bytes.len()),
            Some(Frame::Round { seq })
        );
    }

    /// An envelope whose *inner* payload length exceeds the wire cap is
    /// rejected as malformed even when the outer frame length is modest —
    /// the cap is enforced at both layers.
    #[test]
    fn inner_payload_over_wire_cap_is_malformed(seq in 0u64..100) {
        // Hand-build an envelope body claiming a payload just over the
        // cap (kind byte 2 = ENVELOPE). None of these bytes is MAGIC, so
        // resync lands exactly on the trailing valid frame.
        let mut body = vec![2u8];
        write_varint(&mut body, 0); // staged_idx
        write_varint(&mut body, 1); // from
        write_varint(&mut body, 2); // to
        write_varint(&mut body, MAX_WIRE_BYTES as u64 + 1);
        let mut bytes = vec![MAGIC];
        write_varint(&mut bytes, body.len() as u64);
        bytes.extend_from_slice(&body);
        bytes.extend_from_slice(&frame_to_vec(&Frame::Round { seq }));

        let mut reader = FrameReader::new();
        reader.push(&bytes);
        prop_assert!(matches!(reader.pop(), Err(FrameError::Malformed(_))));
        prop_assert_eq!(
            pop_until_frame(&mut reader, bytes.len()),
            Some(Frame::Round { seq })
        );
    }

    /// Garbage prefixed to a valid stream: the reader skips to the next
    /// magic byte, counts the resync, and decodes the real frames intact.
    /// (Magic bytes in the garbage are masked out so the count is exact.)
    #[test]
    fn garbage_prefix_resyncs(
        garbage_raw in proptest::collection::vec(any::<u8>(), 1..64),
        raw in proptest::collection::vec(
            (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..200)), 0..4),
        seq in 0u64..100,
    ) {
        let batch = batch_from(&raw, seq);
        let mut bytes: Vec<u8> = garbage_raw
            .iter()
            .map(|&b| if b == MAGIC { 0 } else { b })
            .collect();
        bytes.extend_from_slice(&encode_batch(&batch));
        let mut reader = FrameReader::new();
        reader.push(&bytes);
        prop_assert_eq!(drain_ok(&mut reader), batch);
        prop_assert_eq!(reader.resyncs(), 1, "one contiguous garbage run");
    }

    /// Garbage *between* frames is likewise skipped, with the frames on
    /// both sides preserved.
    #[test]
    fn garbage_between_frames_resyncs(
        ids in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        garbage_raw in proptest::collection::vec(any::<u8>(), 1..32),
        seq in 0u64..100,
    ) {
        let first = Frame::Envelope {
            staged_idx: 0,
            env: Envelope {
                from: PartyId(ids % 4096),
                to: PartyId((ids >> 16) % 4096),
                payload,
            },
        };
        let mut bytes = frame_to_vec(&first);
        bytes.extend(garbage_raw.iter().map(|&b| if b == MAGIC { 0 } else { b }));
        bytes.extend_from_slice(&frame_to_vec(&Frame::Round { seq }));
        let mut reader = FrameReader::new();
        reader.push(&bytes);
        prop_assert_eq!(drain_ok(&mut reader), vec![first, Frame::Round { seq }]);
        prop_assert_eq!(reader.resyncs(), 1);
    }

    /// Pure garbage never panics and always terminates: each pop makes
    /// progress until the reader reports "need more bytes".
    #[test]
    fn arbitrary_bytes_never_panic(noise in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut reader = FrameReader::new();
        reader.push(&noise);
        let mut done = false;
        for _ in 0..(noise.len() + 2) {
            match reader.pop() {
                Ok(Some(_)) | Err(_) => continue,
                Ok(None) => {
                    done = true;
                    break;
                }
            }
        }
        prop_assert!(done, "reader failed to terminate on arbitrary input");
    }
}
