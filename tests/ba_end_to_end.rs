//! Cross-crate integration: the full `π_ba` stack (crypto → snark → net →
//! aetree → srds → core) under a matrix of schemes, inputs, and
//! adversaries.

use polylog_ba::prelude::*;

fn check(outcome: &BaOutcome, expected: Option<u8>) {
    assert!(outcome.agreement, "agreement failed: {:?}", outcome.outputs);
    assert!(outcome.validity, "validity failed");
    if let Some(v) = expected {
        assert_eq!(outcome.output, Some(v));
    }
}

#[test]
fn matrix_owf() {
    let scheme = OwfSrds::with_defaults();
    for (n, t, input) in [(64usize, 0usize, 0u8), (96, 9, 1), (128, 12, 0)] {
        let config = if t == 0 {
            BaConfig::honest(n, format!("e2e-owf-{n}").as_bytes())
        } else {
            BaConfig::byzantine(n, t, format!("e2e-owf-{n}").as_bytes())
        };
        let outcome = run_ba(&scheme, &config, &vec![input; n]);
        check(&outcome, Some(input));
    }
}

#[test]
fn matrix_snark() {
    let scheme = SnarkSrds::with_defaults();
    for (n, t, input) in [(64usize, 0usize, 1u8), (96, 9, 0), (160, 15, 1)] {
        let config = if t == 0 {
            BaConfig::honest(n, format!("e2e-snark-{n}").as_bytes())
        } else {
            BaConfig::byzantine(n, t, format!("e2e-snark-{n}").as_bytes())
        };
        let outcome = run_ba(&scheme, &config, &vec![input; n]);
        check(&outcome, Some(input));
    }
}

#[test]
fn matrix_multisig_baseline() {
    let scheme = MultisigSrds::with_defaults();
    let config = BaConfig::byzantine(96, 9, b"e2e-multisig");
    let outcome = run_ba(&scheme, &config, &[1u8; 96]);
    check(&outcome, Some(1));
    // The baseline's certificate carries the Θ(n) bitmap.
    let expected_bitmap = pba_aetree::params::TreeParams::scaled(96, 2)
        .total_slots()
        .div_ceil(8);
    assert!(outcome.certificate_len.unwrap() >= expected_bitmap);
}

#[test]
fn snark_certificate_stays_constant_while_multisig_grows() {
    let snark = SnarkSrds::with_defaults();
    let multi = MultisigSrds::with_defaults();
    let mut snark_sizes = Vec::new();
    let mut multi_sizes = Vec::new();
    for n in [64usize, 160] {
        let config = BaConfig::honest(n, format!("e2e-cert-{n}").as_bytes());
        snark_sizes.push(
            run_ba(&snark, &config, &vec![1u8; n])
                .certificate_len
                .unwrap(),
        );
        multi_sizes.push(
            run_ba(&multi, &config, &vec![1u8; n])
                .certificate_len
                .unwrap(),
        );
    }
    assert_eq!(
        snark_sizes[0], snark_sizes[1],
        "SNARK certificate not constant"
    );
    assert!(
        multi_sizes[1] > multi_sizes[0],
        "multisig certificate not growing"
    );
}

#[test]
fn per_party_polylog_vs_all_to_all() {
    // Even at modest n, π_ba (SNARK) beats all-to-all BA on max locality...
    let n = 128;
    let scheme = SnarkSrds::with_defaults();
    let config = BaConfig::honest(n, b"e2e-compare");
    let pi_ba = run_ba(&scheme, &config, &vec![1u8; n]);
    let a2a = all_to_all_ba(n, 0, 1);
    // ...and the growth comparison is what the bench harness sweeps; here we
    // check the structural claim: π_ba rounds stay far below all-to-all's
    // t+1 phases at any real scale.
    assert!(pi_ba.report.rounds < a2a.rounds);
}

#[test]
fn mixed_inputs_agree_on_something() {
    let scheme = SnarkSrds::with_defaults();
    let config = BaConfig::byzantine(96, 8, b"e2e-mixed");
    let inputs: Vec<u8> = (0..96).map(|i| (i % 2) as u8).collect();
    let outcome = run_ba(&scheme, &config, &inputs);
    assert!(outcome.agreement);
    assert!(outcome.output.is_some());
    assert!(outcome.output == Some(0) || outcome.output == Some(1));
}

#[test]
fn deterministic_given_seed() {
    let scheme = OwfSrds::with_defaults();
    let config = BaConfig::byzantine(96, 9, b"e2e-det");
    let a = run_ba(&scheme, &config, &[1u8; 96]);
    let b = run_ba(&scheme, &config, &[1u8; 96]);
    assert_eq!(a.outputs, b.outputs);
    assert_eq!(a.report.total_bytes, b.report.total_bytes);
    assert_eq!(a.corrupt, b.corrupt);
}

#[test]
fn prefix_corruption_plan() {
    // Structured corruption placement (contiguous virtual IDs) stresses the
    // range-based aggregation logic.
    let scheme = SnarkSrds::with_defaults();
    let mut config = BaConfig::honest(96, b"e2e-prefix");
    config.corruption = CorruptionPlan::Prefix { t: 9 };
    config.profile = AdversaryProfile::Byzantine;
    let outcome = run_ba(&scheme, &config, &[1u8; 96]);
    check(&outcome, Some(1));
}
