//! Property-based tests over the SRDS schemes: aggregation is
//! order-insensitive and duplicate-proof, verification thresholds are
//! exact, and the security games hold over random corruption patterns.

use pba_crypto::prg::Prg;
use pba_srds::experiments::{
    run_forgery, run_robustness, AggregateForgeryAdversary, DefaultRobustnessAdversary,
};
use pba_srds::owf::{OwfSignature, OwfSrds};
use pba_srds::snark::{SnarkSignature, SnarkSrds};
use pba_srds::traits::{PkiBoard, Srds};
use proptest::prelude::*;

fn owf_board(n: usize, seed: &[u8]) -> (OwfSrds, PkiBoard<OwfSrds>, Vec<OwfSignature>) {
    let scheme = OwfSrds::with_defaults();
    let mut prg = Prg::from_seed_bytes(seed);
    let board = PkiBoard::establish(&scheme, n, &mut prg);
    let sigs = (0..n as u64)
        .filter_map(|i| scheme.sign(&board.pp, i, &board.sks[i as usize], b"prop-m"))
        .collect();
    (scheme, board, sigs)
}

fn snark_board(n: usize, seed: &[u8]) -> (SnarkSrds, PkiBoard<SnarkSrds>, Vec<SnarkSignature>) {
    let scheme = SnarkSrds::with_defaults();
    let mut prg = Prg::from_seed_bytes(seed);
    let board = PkiBoard::establish(&scheme, n, &mut prg);
    let sigs = (0..n as u64)
        .filter_map(|i| scheme.sign(&board.pp, i, &board.sks[i as usize], b"prop-m"))
        .collect();
    (scheme, board, sigs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn owf_aggregation_order_insensitive(seed in any::<[u8; 8]>(), swaps in proptest::collection::vec((0usize..64, 0usize..64), 0..24)) {
        let (scheme, board, sigs) = owf_board(256, &seed);
        prop_assume!(sigs.len() >= 2);
        let keys = board.prepare(&scheme);
        let base = scheme.aggregate(&board.pp, &keys, b"prop-m", &sigs).unwrap();
        let mut shuffled = sigs.clone();
        for (a, b) in swaps {
            let (a, b) = (a % shuffled.len(), b % shuffled.len());
            shuffled.swap(a, b);
        }
        let agg = scheme.aggregate(&board.pp, &keys, b"prop-m", &shuffled).unwrap();
        prop_assert_eq!(agg, base);
    }

    #[test]
    fn owf_duplicates_never_inflate(seed in any::<[u8; 8]>(), dup_factor in 2usize..5) {
        let (scheme, board, sigs) = owf_board(256, &seed);
        prop_assume!(!sigs.is_empty());
        let keys = board.prepare(&scheme);
        let base = scheme.aggregate(&board.pp, &keys, b"prop-m", &sigs).unwrap();
        let mut dup = Vec::new();
        for _ in 0..dup_factor {
            dup.extend(sigs.iter().cloned());
        }
        let agg = scheme.aggregate(&board.pp, &keys, b"prop-m", &dup).unwrap();
        prop_assert_eq!(agg.entries.len(), base.entries.len());
    }

    #[test]
    fn snark_count_is_exact_for_any_subset(seed in any::<[u8; 8]>(), keep_mask in any::<u64>()) {
        let (scheme, board, sigs) = snark_board(48, &seed);
        let keys = board.prepare(&scheme);
        let subset: Vec<SnarkSignature> = sigs
            .iter()
            .enumerate()
            .filter(|(i, _)| keep_mask >> (i % 64) & 1 == 1)
            .map(|(_, s)| s.clone())
            .collect();
        prop_assume!(!subset.is_empty());
        let agg = scheme.aggregate(&board.pp, &keys, b"prop-m", &subset).unwrap();
        if let SnarkSignature::Agg(cert) = &agg {
            prop_assert_eq!(cert.count as usize, subset.len());
        } else {
            prop_assert!(false, "expected aggregate");
        }
    }

    #[test]
    fn snark_split_aggregation_counts_match_flat(seed in any::<[u8; 8]>(), split in 1usize..47) {
        let (scheme, board, sigs) = snark_board(48, &seed);
        let keys = board.prepare(&scheme);
        let a = scheme.aggregate(&board.pp, &keys, b"prop-m", &sigs[..split]).unwrap();
        let b = scheme.aggregate(&board.pp, &keys, b"prop-m", &sigs[split..]).unwrap();
        let joined = scheme.aggregate(&board.pp, &keys, b"prop-m", &[a, b]).unwrap();
        if let SnarkSignature::Agg(cert) = &joined {
            prop_assert_eq!(cert.count, 48);
            prop_assert!(scheme.verify(&board.pp, &keys, b"prop-m", &joined));
        } else {
            prop_assert!(false, "expected aggregate");
        }
    }

    #[test]
    fn robustness_holds_over_random_seeds(seed in any::<[u8; 8]>(), n in 120usize..260) {
        let scheme = SnarkSrds::with_defaults();
        let t = n / 12;
        let out = run_robustness(&scheme, n, t, &mut DefaultRobustnessAdversary, &seed)
            .expect("well-posed");
        prop_assert!(out.verified);
    }

    #[test]
    fn forgery_never_succeeds_over_random_seeds(seed in any::<[u8; 8]>(), n in 120usize..260) {
        // The sortition scheme's unforgeability is a concentration bound
        // (see the margin analysis in pba_srds::owf); against the game's
        // maximal n/3 coalition, a ~4sigma margin needs s ~ 150+ signers.
        let scheme = OwfSrds::new(pba_srds::owf::OwfSrdsConfig {
            lamport_bits: 32,
            signer_factor: 20,
            min_signers: 150,
        });
        let t = n / 12;
        let out = run_forgery(&scheme, n, t, &mut AggregateForgeryAdversary::default(), &seed)
            .expect("well-posed");
        prop_assert!(!out.forged);
    }

    #[test]
    fn forgery_never_succeeds_snark(seed in any::<[u8; 8]>(), n in 90usize..200) {
        // The SNARK scheme counts exactly (no concentration slack): a
        // sub-majority coalition can never reach the n/2+1 threshold.
        let scheme = SnarkSrds::with_defaults();
        let t = n / 12;
        let out = run_forgery(&scheme, n, t, &mut AggregateForgeryAdversary::default(), &seed)
            .expect("well-posed");
        prop_assert!(!out.forged);
    }

    #[test]
    fn min_max_indices_bound_all_aggregated(seed in any::<[u8; 8]>(), lo in 0usize..20, width in 5usize..28) {
        let (scheme, board, sigs) = snark_board(48, &seed);
        let keys = board.prepare(&scheme);
        let hi = (lo + width).min(sigs.len());
        let slice = &sigs[lo..hi];
        let agg = scheme.aggregate(&board.pp, &keys, b"prop-m", slice).unwrap();
        prop_assert_eq!(scheme.min_index(&agg), lo as u64);
        prop_assert_eq!(scheme.max_index(&agg), (hi - 1) as u64);
    }
}

/// Triage of the checked-in `proptest-regressions` seed
/// `seed = [24, 211, 221, 89, 199, 208, 31, 165], n = 127`: the shrunken
/// input is in range for all three `(seed, n)` security games above, so
/// it is pinned against each of them as a named case (replacing the
/// regressions file, which could not say which property it once failed).
/// All three now pass — in particular the SNARK paths exercise the
/// verified-certificate cache, which must not change any verdict.
mod pinned_regressions {
    use super::*;

    const SEED: [u8; 8] = [24, 211, 221, 89, 199, 208, 31, 165];
    const N: usize = 127;

    #[test]
    fn regression_seed_robustness_snark_n127() {
        let scheme = SnarkSrds::with_defaults();
        let out = run_robustness(&scheme, N, N / 12, &mut DefaultRobustnessAdversary, &SEED)
            .expect("well-posed");
        assert!(out.verified, "robustness regression re-fired at n={N}");
    }

    #[test]
    fn regression_seed_forgery_owf_n127() {
        let scheme = OwfSrds::new(pba_srds::owf::OwfSrdsConfig {
            lamport_bits: 32,
            signer_factor: 20,
            min_signers: 150,
        });
        let out = run_forgery(
            &scheme,
            N,
            N / 12,
            &mut AggregateForgeryAdversary::default(),
            &SEED,
        )
        .expect("well-posed");
        assert!(!out.forged, "owf forgery regression re-fired at n={N}");
    }

    #[test]
    fn regression_seed_forgery_snark_n127() {
        let scheme = SnarkSrds::with_defaults();
        let out = run_forgery(
            &scheme,
            N,
            N / 12,
            &mut AggregateForgeryAdversary::default(),
            &SEED,
        )
        .expect("well-posed");
        assert!(!out.forged, "snark forgery regression re-fired at n={N}");
    }
}
