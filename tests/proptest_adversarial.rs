//! Adversarial fuzzing: random Byzantine message-injection strategies
//! against the committee sub-protocols. Whatever bytes the adversary
//! throws, honest parties must terminate in agreement.

use pba_core::coin::CoinMsg;
use pba_core::phase_king::{rounds_for, PhaseKing, PkMsg};
use pba_core::vss_coin::{toss_coin_vss, VssCoinMsg};
use pba_crypto::codec::decode_from_slice;
use pba_crypto::prg::Prg;
use pba_net::corruption::CorruptionPlan;
use pba_net::faults::{GarbleMode, StrategySpec};
use pba_net::runner::{run_phase, AdvSender, Adversary};
use pba_net::wire;
use pba_net::{Ctx, Envelope, Machine, Network, PartyId};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// An adversary that sends arbitrary attacker-chosen byte strings from
/// every corrupted party to pseudorandom honest targets each round.
struct FuzzAdversary {
    corrupted: BTreeSet<PartyId>,
    n: u64,
    prg: Prg,
    max_len: usize,
    messages_per_round: usize,
}

impl Adversary for FuzzAdversary {
    fn corrupted(&self) -> &BTreeSet<PartyId> {
        &self.corrupted
    }
    fn on_round(
        &mut self,
        _round: u64,
        _rushed: &BTreeMap<PartyId, Vec<Envelope>>,
        sender: &mut AdvSender<'_>,
    ) {
        for &bad in self.corrupted.clone().iter() {
            for _ in 0..self.messages_per_round {
                let target = PartyId(self.prg.gen_range(self.n));
                if self.corrupted.contains(&target) {
                    continue;
                }
                let len = self.prg.gen_range(self.max_len as u64 + 1) as usize;
                let mut payload = vec![0u8; len];
                rand::RngCore::fill_bytes(&mut self.prg, &mut payload);
                sender.send_raw(bad, target, payload);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn phase_king_survives_fuzzing(
        c in 7usize..16,
        t_frac in 0usize..3,
        seed in any::<[u8; 8]>(),
        max_len in 1usize..64,
        rate in 1usize..6,
    ) {
        let t = (c - 1) / 3;
        let corrupt_count = (t * t_frac) / 2; // 0..=t
        let committee: Vec<PartyId> = (0..c as u64).map(PartyId).collect();
        let corrupted: BTreeSet<PartyId> =
            committee[c - corrupt_count..].iter().copied().collect();
        let mut adversary = FuzzAdversary {
            corrupted: corrupted.clone(),
            n: c as u64,
            prg: Prg::from_seed_bytes(&seed),
            max_len,
            messages_per_round: rate,
        };
        let mut net = Network::new(c);
        let mut machines: BTreeMap<PartyId, PhaseKing<u8>> = committee
            .iter()
            .filter(|p| !corrupted.contains(p))
            .map(|&p| (p, PhaseKing::new(committee.clone(), p, (p.0 % 2) as u8)))
            .collect();
        {
            let mut erased: BTreeMap<PartyId, Box<dyn Machine + Send + '_>> = machines
                .iter_mut()
                .map(|(&id, m)| (id, Box::new(m) as Box<dyn Machine + Send + '_>))
                .collect();
            let outcome = run_phase(&mut net, &mut erased, &mut adversary, rounds_for(c) + 6);
            prop_assert!(outcome.completed, "phase-king hung under fuzzing");
        }
        let outputs: BTreeSet<u8> = machines
            .values()
            .map(|m| *m.output().expect("terminated"))
            .collect();
        prop_assert_eq!(outputs.len(), 1, "honest disagreement under fuzzing");
    }

    #[test]
    fn vss_coin_survives_fuzzing(
        c in 7usize..14,
        seed in any::<[u8; 8]>(),
        max_len in 1usize..128,
    ) {
        let t = (c - 1) / 3;
        let committee: Vec<PartyId> = (0..c as u64).map(PartyId).collect();
        let corrupted: BTreeSet<PartyId> = committee[c - t..].iter().copied().collect();
        let mut adversary = FuzzAdversary {
            corrupted: corrupted.clone(),
            n: c as u64,
            prg: Prg::from_seed_bytes(&seed),
            max_len,
            messages_per_round: 3,
        };
        let mut net = Network::new(c);
        let mut prg = Prg::from_seed_bytes(&seed);
        let seeds = toss_coin_vss(&mut net, &committee, &mut adversary, &mut prg);
        let distinct: BTreeSet<_> = seeds.values().copied().collect();
        prop_assert_eq!(distinct.len(), 1, "coin split under fuzzing");
    }

    #[test]
    fn receivers_never_pay_for_filtered_floods(
        seed in any::<[u8; 8]>(),
        flood_len in 100usize..1000,
    ) {
        // A flooded party that filters by sender processes nothing: its
        // received-bytes counter stays zero however large the flood.
        struct Mute;
        impl Machine for Mute {
            fn on_round(&mut self, _: &mut pba_net::Ctx<'_>, _: &[Envelope]) {}
            fn is_done(&self) -> bool {
                false
            }
        }
        let mut net = Network::new(2);
        let mut machines: BTreeMap<PartyId, Box<dyn Machine + Send>> =
            [(PartyId(0), Box::new(Mute) as Box<dyn Machine + Send>)].into();
        let mut adversary = FuzzAdversary {
            corrupted: [PartyId(1)].into(),
            n: 2,
            prg: Prg::from_seed_bytes(&seed),
            max_len: flood_len,
            messages_per_round: 10,
        };
        run_phase(&mut net, &mut machines, &mut adversary, 5);
        prop_assert_eq!(net.metrics().party(PartyId(0)).bytes_received, 0);
        prop_assert!(net.metrics().party(PartyId(1)).bytes_sent > 0);
    }

    #[test]
    fn corruption_plans_deterministic_and_in_range(
        n in 4usize..200,
        t_pct in 0usize..34,
        step in 1usize..5,
        offset in 0usize..4,
        seed in any::<[u8; 8]>(),
    ) {
        let t = n * t_pct / 100;
        for plan in [
            CorruptionPlan::None,
            CorruptionPlan::Random { t },
            CorruptionPlan::Prefix { t },
            CorruptionPlan::Suffix { t },
        ] {
            let a = plan.materialize(n, &mut Prg::from_seed_bytes(&seed));
            let b = plan.materialize(n, &mut Prg::from_seed_bytes(&seed));
            prop_assert_eq!(&a, &b, "plan {} not deterministic per seed", plan.label());
            let expected = if plan == CorruptionPlan::None { 0 } else { t };
            prop_assert_eq!(a.len(), expected, "plan {} wrong size", plan.label());
            prop_assert!(a.iter().all(|p| p.index() < n), "plan {} out of range", plan.label());
        }
        // Stride, clamped so the placement fits in [0, n).
        if offset < n {
            let available = (n - offset).div_ceil(step);
            let plan = CorruptionPlan::Stride { t: t.min(available), step, offset };
            let a = plan.materialize(n, &mut Prg::from_seed_bytes(&seed));
            prop_assert_eq!(a.len(), t.min(available));
            prop_assert!(a.iter().all(
                |p| p.index() < n && p.index() >= offset && (p.index() - offset) % step == 0
            ));
        }
    }

    #[test]
    fn message_types_survive_arbitrary_bytes(
        len in 0usize..256,
        seed in any::<[u8; 8]>(),
    ) {
        // Decoding attacker-chosen bytes must reject cleanly (Err), never
        // panic, for every protocol wire type.
        let mut prg = Prg::from_seed_bytes(&seed);
        let mut bytes = vec![0u8; len];
        rand::RngCore::fill_bytes(&mut prg, &mut bytes);
        let _ = decode_from_slice::<PkMsg<u8>>(&bytes);
        let _ = decode_from_slice::<CoinMsg>(&bytes);
        let _ = decode_from_slice::<VssCoinMsg>(&bytes);
        let _ = wire::decode_msg::<pba_core::protocol::ValueSeed>(&bytes);
        let _ = wire::decode_msg::<pba_core::protocol::Certificate>(&bytes);
        let _ = wire::decode_msg::<PkMsg<u8>>(&bytes);
    }

    #[test]
    fn ctx_read_survives_fault_strategies(
        seed in any::<[u8; 8]>(),
        strategy in 0usize..6,
    ) {
        // Honest receivers running `Ctx::read` on traffic produced by the
        // fault-injection combinators (garbled replays of real messages,
        // equivocations, floods) must terminate without panicking.
        struct Probe {
            rounds: u64,
        }
        impl Machine for Probe {
            fn on_round(&mut self, ctx: &mut Ctx<'_>, inbox: &[Envelope]) {
                // Feed the adversary real typed traffic to mutate/replay/fork.
                let victim = PartyId(ctx.n() as u64 - 1);
                ctx.send_msg(victim, &PkMsg::Value(self.rounds as u8));
                for env in inbox {
                    let _ = ctx.recv_msg::<PkMsg<u8>>(env);
                    let _ = ctx.read::<PkMsg<u8>>(env);
                    let _ = ctx.read::<CoinMsg>(env);
                    let _ = ctx.read::<VssCoinMsg>(env);
                }
                self.rounds += 1;
            }
            fn is_done(&self) -> bool {
                self.rounds >= 6
            }
        }
        let n = 6;
        let corrupted: BTreeSet<PartyId> = [PartyId(4), PartyId(5)].into();
        let spec = [
            StrategySpec::Garble(GarbleMode::Both),
            StrategySpec::Equivocate,
            StrategySpec::Replay { per_round: 2 },
            StrategySpec::Flood { victim: None, payload_len: 64, per_round: 4 },
            StrategySpec::Garble(GarbleMode::Field),
            StrategySpec::EquivocateTyped,
        ][strategy].clone();
        let mut adversary = spec.build(corrupted, n, &Prg::from_seed_bytes(&seed));
        let mut net = Network::new(n);
        let mut machines: BTreeMap<PartyId, Box<dyn Machine + Send>> = (0..4u64)
            .map(|i| (PartyId(i), Box::new(Probe { rounds: 0 }) as Box<dyn Machine + Send>))
            .collect();
        let outcome = run_phase(&mut net, &mut machines, adversary.as_mut(), 8);
        prop_assert!(outcome.completed, "probes hung under {}", spec.label());
    }
}
