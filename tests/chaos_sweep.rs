//! Chaos sweep as a regression gate: every case in the default
//! fault-injection matrix must either complete with agreement + validity
//! or degrade gracefully to a structured failure. Honest-side panics,
//! disagreement, and validity breaks are violations and fail the test
//! with a `CHAOS-REPRO` line that replays the offending case.

use pba_bench::chaos::{default_cases, render_sweep, run_case, run_sweep, ChaosVerdict};

#[test]
fn chaos_sweep_holds_invariants() {
    let cases = default_cases(b"chaos-ci");
    assert!(
        cases.len() >= 20,
        "sweep matrix shrank to {} combos",
        cases.len()
    );

    let reports = run_sweep(&cases);
    let table = render_sweep(&reports);

    let violations: Vec<_> = reports
        .iter()
        .filter(|r| r.verdict.is_violation())
        .collect();
    assert!(
        violations.is_empty(),
        "chaos sweep found {} violation(s):\n{}\n{}",
        violations.len(),
        violations
            .iter()
            .map(|r| r.case.repro())
            .collect::<Vec<_>>()
            .join("\n"),
        table
    );

    // Under-bound cases must keep SAFETY: either full agreement, or a
    // structured stall/timeout (chaos strategies exceed the modeled
    // adversary, so liveness may be jammed — gracefully). Over-bound
    // plans must be rejected at the establishment bound check.
    for r in &reports {
        if r.case.honest_majority() {
            assert!(
                matches!(
                    r.verdict,
                    ChaosVerdict::Agreed { .. } | ChaosVerdict::Degraded { .. }
                ),
                "under-bound case broke safety: {} -> {}\n{}",
                r.case.repro(),
                r.verdict.label(),
                table
            );
        } else {
            assert!(
                matches!(r.verdict, ChaosVerdict::Degraded { .. }),
                "over-bound case must degrade gracefully: {} -> {}",
                r.case.repro(),
                r.verdict.label()
            );
        }
    }
    // The sweep exercises both sides of the bound, and a healthy slice of
    // the matrix still reaches full agreement under active faults.
    assert!(reports.iter().any(|r| !r.case.honest_majority()));
    let agreed = reports
        .iter()
        .filter(|r| matches!(r.verdict, ChaosVerdict::Agreed { .. }))
        .count();
    assert!(
        agreed >= 5,
        "only {agreed} cases reached agreement under chaos:\n{table}"
    );
}

#[test]
fn chaos_cases_are_deterministic() {
    // Same case, run twice: identical classification (the repro-line
    // contract depends on this).
    let case = default_cases(b"chaos-ci")
        .into_iter()
        .find(|c| c.honest_majority())
        .expect("matrix has under-bound cases");
    let (a, b) = (run_case(&case), run_case(&case));
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
    assert!(!a.is_violation());
}
