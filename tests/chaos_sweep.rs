//! Chaos sweep as a regression gate: every case in the default
//! fault-injection matrix must either complete with agreement + validity
//! or degrade gracefully to a structured failure. Honest-side panics,
//! disagreement, and validity breaks are violations and fail the test
//! with a `CHAOS-REPRO` line that replays the offending case.
//!
//! On top of the invariants, [`golden_outcome_table`] pins the exact
//! verdict of every case under the CI seed. The table documents the
//! robust-aggregation upgrade: the committee-takeover and structured
//! placements that used to stall certification (σ_root never formed over
//! the single-copy ascent) now reach agreement over redundant paths,
//! while over-bound plans — including the adaptive one — are still
//! rejected at the establishment bound check. The timing rows pin the
//! partial-synchrony driver: bounded latency and healed partitions are
//! absorbed, whole-run churn times out gracefully, and nothing violates.

use pba_bench::chaos::{
    default_cases, default_stream_cases, render_sweep, run_case, run_stream_case, run_sweep,
    ChaosReport, ChaosVerdict,
};
use std::sync::OnceLock;

/// The full CI-seed sweep, run once and shared by every test in this file
/// (a debug-mode sweep is ~1 min; running it per-test would dominate
/// tier-1 time).
fn sweep() -> &'static [ChaosReport] {
    static SWEEP: OnceLock<Vec<ChaosReport>> = OnceLock::new();
    SWEEP.get_or_init(|| run_sweep(&default_cases(b"chaos-ci")))
}

/// Expected verdict per case under seed `chaos-ci`, keyed by
/// `n establishment plan strategy`. Regenerate with
/// `cargo run --release -p pba-bench --bin chaos -- chaos-ci`.
const GOLDEN: &[(&str, &str)] = &[
    ("48 charged random-4 silent", "agreed(Some(1))"),
    ("48 charged explicit-10 silent", "agreed(Some(1))"),
    ("48 charged random-4 equivocate", "agreed(Some(1))"),
    ("48 charged explicit-12 equivocate", "agreed(Some(1))"),
    ("48 charged random-4 equivocate-typed", "agreed(Some(1))"),
    ("48 charged explicit-11 equivocate-typed", "agreed(Some(1))"),
    ("48 charged random-4 garble-bitflip", "agreed(Some(1))"),
    ("48 charged explicit-12 garble-bitflip", "agreed(Some(1))"),
    ("48 charged random-4 garble-truncate", "agreed(Some(1))"),
    ("48 charged explicit-11 garble-truncate", "agreed(Some(1))"),
    ("48 charged random-4 garble-both", "agreed(Some(1))"),
    ("48 charged explicit-11 garble-both", "agreed(Some(1))"),
    ("48 charged random-4 garble-field", "agreed(Some(1))"),
    ("48 charged explicit-12 garble-field", "agreed(Some(1))"),
    ("48 charged random-4 replay-3", "agreed(Some(1))"),
    ("48 charged explicit-11 replay-3", "agreed(Some(1))"),
    ("48 charged random-4 flood-512x8", "agreed(Some(1))"),
    ("48 charged explicit-11 flood-512x8", "agreed(Some(1))"),
    ("48 charged random-4 crash@4(equivocate)", "agreed(Some(1))"),
    (
        "48 charged explicit-12 crash@4(equivocate)",
        "agreed(Some(1))",
    ),
    (
        "48 charged random-4 compose[equivocate+flood-256x4]",
        "agreed(Some(1))",
    ),
    (
        "48 charged explicit-12 compose[equivocate+flood-256x4]",
        "agreed(Some(1))",
    ),
    (
        "48 charged random-4 phased[0:garble-bitflip,3:equivocate,8:replay-2]",
        "agreed(Some(1))",
    ),
    (
        "48 charged explicit-11 phased[0:garble-bitflip,3:equivocate,8:replay-2]",
        "agreed(Some(1))",
    ),
    ("48 charged random-4 delay-uni1-b2", "agreed(Some(1))"),
    ("48 charged explicit-12 delay-uni1-b2", "agreed(Some(1))"),
    ("48 charged random-4 delay-uni3-b4", "agreed(Some(1))"),
    ("48 charged explicit-11 delay-uni3-b4", "agreed(Some(1))"),
    ("48 charged random-4 delay-geo1of2c3-b4", "agreed(Some(1))"),
    (
        "48 charged explicit-11 delay-geo1of2c3-b4",
        "agreed(Some(1))",
    ),
    ("48 charged random-4 partition-24-heal4", "agreed(Some(1))"),
    (
        "48 charged explicit-12 partition-24-heal4",
        "agreed(Some(1))",
    ),
    ("48 charged random-4 churn-2@2-10", "agreed(Some(1))"),
    ("48 charged explicit-11 churn-2@2-10", "agreed(Some(1))"),
    ("64 charged suffix-16 equivocate", "agreed(Some(1))"),
    ("64 charged stride-16x3+1 equivocate", "agreed(Some(1))"),
    ("64 charged suffix-16 garble-both", "agreed(Some(1))"),
    ("64 charged stride-16x3+1 garble-both", "agreed(Some(1))"),
    ("64 charged suffix-16 flood-512x8", "agreed(Some(1))"),
    ("64 charged stride-16x3+1 flood-512x8", "agreed(Some(1))"),
    (
        "64 charged suffix-16 compose[equivocate+replay-2]",
        "agreed(Some(1))",
    ),
    (
        "64 charged stride-16x3+1 compose[equivocate+replay-2]",
        "agreed(Some(1))",
    ),
    ("48 interactive random-4 silent", "agreed(Some(1))"),
    ("48 interactive suffix-4 silent", "agreed(Some(1))"),
    ("48 interactive stride-4x3+1 silent", "agreed(Some(1))"),
    ("48 interactive adaptive-8 silent", "agreed(Some(1))"),
    ("48 interactive random-4 equivocate", "agreed(Some(1))"),
    ("48 interactive suffix-4 equivocate", "agreed(Some(1))"),
    ("48 interactive stride-4x3+1 equivocate", "agreed(Some(1))"),
    ("48 interactive adaptive-8 equivocate", "agreed(Some(1))"),
    ("48 interactive random-4 garble-both", "agreed(Some(1))"),
    ("48 interactive suffix-4 garble-both", "agreed(Some(1))"),
    ("48 interactive stride-4x3+1 garble-both", "agreed(Some(1))"),
    ("48 interactive adaptive-8 garble-both", "agreed(Some(1))"),
    ("48 charged adaptive-8 silent", "agreed(Some(1))"),
    ("48 charged adaptive-8 equivocate", "agreed(Some(1))"),
    ("48 charged adaptive-8 garble-both", "agreed(Some(1))"),
    (
        "48 charged adaptive-15 equivocate",
        "degraded(certification)",
    ),
    ("48 charged random-16 silent", "degraded(establishment)"),
    ("48 charged random-16 equivocate", "degraded(establishment)"),
    ("48 charged adaptive-16 silent", "degraded(establishment)"),
    ("48 charged random-4 delay-fix1-b2", "agreed(Some(1))"),
    (
        "48 charged random-4 partition-24-forever",
        "agreed(Some(1))",
    ),
    ("48 charged random-4 churn-4@6-18", "agreed(Some(1))"),
    (
        "48 charged random-4 churn-20@0-4096",
        "degraded(committee-ba)",
    ),
    (
        "48 charged random-4 compose[delay-uni1-b2+equivocate]",
        "agreed(Some(1))",
    ),
    ("48 interactive random-4 delay-uni1-b2", "agreed(Some(1))"),
];

/// Cases that stalled certification (`only 0 of N honest parties obtained
/// output`) before redundant-path aggregation, under the same CI seed.
/// They must now reach agreement — the headline regression this gate
/// protects.
const FORMERLY_STALLED: &[&str] = &[
    "48 charged explicit-12 garble-bitflip",
    "48 charged explicit-11 garble-truncate",
    "48 charged explicit-11 flood-512x8",
    "48 charged explicit-12 crash@4(equivocate)",
    "48 charged explicit-12 compose[equivocate+flood-256x4]",
    "48 charged explicit-11 phased[0:garble-bitflip,3:equivocate,8:replay-2]",
    "64 charged suffix-16 equivocate",
    "64 charged suffix-16 garble-both",
    "64 charged stride-16x3+1 garble-both",
    "64 charged suffix-16 flood-512x8",
    "64 charged stride-16x3+1 flood-512x8",
    "64 charged suffix-16 compose[equivocate+replay-2]",
    "64 charged stride-16x3+1 compose[equivocate+replay-2]",
];

#[test]
fn chaos_sweep_holds_invariants() {
    let reports = sweep();
    assert!(
        reports.len() >= 30,
        "sweep matrix shrank to {} combos",
        reports.len()
    );
    let table = render_sweep(reports);

    let violations: Vec<_> = reports
        .iter()
        .filter(|r| r.verdict.is_violation())
        .collect();
    assert!(
        violations.is_empty(),
        "chaos sweep found {} violation(s):\n{}\n{}",
        violations.len(),
        violations
            .iter()
            .map(|r| r.case.repro())
            .collect::<Vec<_>>()
            .join("\n"),
        table
    );

    // Under-bound cases must keep SAFETY: either full agreement, or a
    // structured stall/timeout (chaos strategies exceed the modeled
    // adversary, so liveness may be jammed — gracefully). Over-bound
    // plans must be rejected at the establishment bound check.
    for r in reports {
        if r.case.honest_majority() {
            assert!(
                matches!(
                    r.verdict,
                    ChaosVerdict::Agreed { .. } | ChaosVerdict::Degraded { .. }
                ),
                "under-bound case broke safety: {} -> {}\n{}",
                r.case.repro(),
                r.verdict.label(),
                table
            );
        } else {
            assert!(
                matches!(r.verdict, ChaosVerdict::Degraded { .. }),
                "over-bound case must degrade gracefully: {} -> {}",
                r.case.repro(),
                r.verdict.label()
            );
        }
    }
    // The sweep exercises both sides of the bound, and a healthy slice of
    // the matrix still reaches full agreement under active faults.
    assert!(reports.iter().any(|r| !r.case.honest_majority()));
    let agreed = reports
        .iter()
        .filter(|r| matches!(r.verdict, ChaosVerdict::Agreed { .. }))
        .count();
    assert!(
        agreed >= 5,
        "only {agreed} cases reached agreement under chaos:\n{table}"
    );
}

#[test]
fn interactive_establishment_never_violates_within_bound() {
    // Satellite invariant for the interactive column specifically: the
    // tournament election plus chaos strategies must never break safety
    // for a bound-respecting placement.
    let mut interactive = 0;
    for r in sweep() {
        if r.case.establishment != pba_core::protocol::Establishment::Interactive {
            continue;
        }
        interactive += 1;
        assert!(
            r.case.honest_majority(),
            "interactive column is under-bound"
        );
        assert!(
            !r.verdict.is_violation(),
            "interactive case violated: {} -> {}",
            r.case.repro(),
            r.verdict.label()
        );
    }
    assert!(
        interactive >= 12,
        "interactive column shrank to {interactive} cases"
    );
}

#[test]
fn golden_outcome_table() {
    let reports = sweep();
    let actual: Vec<(String, String)> = reports
        .iter()
        .map(|r| (r.case.key(), r.verdict.label()))
        .collect();
    assert_eq!(
        actual.len(),
        GOLDEN.len(),
        "matrix size changed — regenerate the golden table:\n{}",
        render_sweep(reports)
    );
    for (i, ((key, verdict), (want_key, want_verdict))) in actual
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .zip(GOLDEN.iter())
        .enumerate()
    {
        assert_eq!(
            (key, verdict),
            (*want_key, *want_verdict),
            "golden table row {i} diverged (repro: {})",
            reports[i].case.repro()
        );
    }
}

/// Expected per-instance verdicts (`;`-joined, instance order) of the
/// mid-stream arming cases under seed `chaos-ci`: a 4-instance stream
/// over one establishment, clean until instance 2 (0-based), then the
/// strategy is armed via `Service::set_chaos`. Regenerate with
/// `cargo run --release -p pba-bench --bin chaos -- chaos-ci`.
const STREAM_GOLDEN: &[(&str, &str)] = &[
    (
        "48 stream-4 arm@2 equivocate",
        "agreed(Some(1));agreed(Some(1));agreed(Some(1));agreed(Some(1))",
    ),
    (
        "48 stream-4 arm@2 garble-both",
        "agreed(Some(1));agreed(Some(1));agreed(Some(1));agreed(Some(1))",
    ),
    (
        "48 stream-4 arm@2 replay-3",
        "agreed(Some(1));agreed(Some(1));agreed(Some(1));agreed(Some(1))",
    ),
    (
        "48 stream-4 arm@2 flood-512x8",
        "agreed(Some(1));agreed(Some(1));agreed(Some(1));agreed(Some(1))",
    ),
];

#[test]
fn golden_mid_stream_arming_table() {
    let cases = default_stream_cases(b"chaos-ci");
    assert_eq!(
        cases.len(),
        STREAM_GOLDEN.len(),
        "stream matrix size changed — regenerate the golden table"
    );
    for (case, (want_key, want_verdicts)) in cases.iter().zip(STREAM_GOLDEN) {
        let report = run_stream_case(case);
        assert_eq!(
            (report.case.key().as_str(), report.verdicts.as_str()),
            (*want_key, *want_verdicts),
            "mid-stream golden row diverged"
        );
        // Earlier instances settled before the adversary was armed: their
        // verdicts must be agreement regardless of what the late strategy
        // does to the rest of the stream.
        let per_instance: Vec<&str> = report.verdicts.split(';').collect();
        assert_eq!(per_instance.len(), case.k);
        for (i, verdict) in per_instance.iter().take(case.arm_at).enumerate() {
            assert!(
                verdict.starts_with("agreed"),
                "{}: pre-arming instance {i} lost its verdict: {verdict}",
                report.case.key()
            );
        }
    }
}

#[test]
fn formerly_stalled_takeovers_now_agree() {
    let reports = sweep();
    assert!(FORMERLY_STALLED.len() >= 5);
    for key in FORMERLY_STALLED {
        let report = reports
            .iter()
            .find(|r| r.case.key() == *key)
            .unwrap_or_else(|| panic!("case {key} missing from the matrix"));
        assert!(
            matches!(report.verdict, ChaosVerdict::Agreed { .. }),
            "{key} stalled before robust aggregation and must now agree, got {}",
            report.verdict.label()
        );
    }
}

#[test]
fn structure_aware_modes_are_exercised_and_safe() {
    // The typed wire layer's fault modes — schema-driven field garbling
    // and typed equivocation — produce lies that *pass* the hardened
    // decoder, so they probe the semantic checks (signatures, quorums)
    // rather than the codec. Each must appear in the matrix and reach
    // agreement under the light random placement.
    let reports = sweep();
    for label in ["garble-field", "equivocate-typed"] {
        let cases: Vec<_> = reports
            .iter()
            .filter(|r| r.case.spec.label() == label)
            .collect();
        assert!(!cases.is_empty(), "{label} missing from the chaos matrix");
        assert!(
            cases
                .iter()
                .any(|r| matches!(r.verdict, ChaosVerdict::Agreed { .. })),
            "{label} never reached agreement"
        );
    }
}

#[test]
fn timing_faults_are_absorbed_or_degrade_gracefully() {
    // Timing gate: pure-latency rows stay within the partial-synchrony
    // round budget, so every one of them must agree; partitions that heal
    // within the granted slack must agree; and no timing row — including
    // the permanent partition and whole-run churn — may ever violate
    // safety. A one-way partition cannot forge a conflicting vote under
    // unanimous input, so even `partition-*-forever` agrees; graceful
    // degradation is exercised by churn that outlives the run.
    let reports = sweep();
    let timing: Vec<_> = reports
        .iter()
        .filter(|r| {
            let l = r.case.spec.label();
            l.contains("delay") || l.contains("partition") || l.contains("churn")
        })
        .collect();
    assert!(
        timing.len() >= 10,
        "timing block shrank to {} rows",
        timing.len()
    );
    for r in &timing {
        let label = r.case.spec.label();
        assert!(
            !r.verdict.is_violation(),
            "timing case broke safety: {} -> {}",
            r.case.repro(),
            r.verdict.label()
        );
        if label.starts_with("delay") || label.contains("heal") {
            assert!(
                matches!(r.verdict, ChaosVerdict::Agreed { .. }),
                "recoverable timing fault failed to agree: {} -> {}",
                r.case.repro(),
                r.verdict.label()
            );
        }
    }
    assert!(
        timing
            .iter()
            .any(|r| matches!(r.verdict, ChaosVerdict::Degraded { .. })),
        "no timing case exercises graceful degradation"
    );
}

#[test]
fn chaos_cases_are_deterministic() {
    // Same case, run twice: identical classification (the repro-line
    // contract depends on this).
    let case = default_cases(b"chaos-ci")
        .into_iter()
        .find(|c| c.honest_majority())
        .expect("matrix has under-bound cases");
    let (a, b) = (run_case(&case), run_case(&case));
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
    assert!(!a.is_violation());
}
