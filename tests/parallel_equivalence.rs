//! Differential test of the deterministic work-stealing round engine:
//! every chaos-matrix strategy × placement at n = 48 is executed
//! sequentially and with 0, 2, 4, 7, and 64 workers from the same seed,
//! and the runs must be *bit-identical* — same
//! [`RoundOutcome`]/[`ProtocolError`], same staged envelope transcript
//! (compared round by round, so a divergence names the first differing
//! round), and the same [`pba_net::Report`] snapshot. The degenerate
//! knob values are deliberate: `threads = 0` must alias the sequential
//! path, and `threads = 64 > n` must cap at one machine per worker
//! rather than spinning up idle stealers that could race the injector.
//!
//! The threads knob reaches both threaded sub-protocols
//! ([`pba_core::protocol::Session::try_committee_ba`] and the VSS coin),
//! and the adversaries here include rushing, equivocating, flooding, and
//! adaptive strategies — exactly the observers that would notice a
//! schedule change. The timing strategies (seeded latency, partitions,
//! churn) flow in from the same catalogue: link delays are a pure
//! function of `(seed, link, tick)`, so the delay queue and the
//! partial-synchrony driver must be thread-count-invariant too.
//!
//! [`RoundOutcome`]: pba_core::protocol::RoundOutcome
//! [`ProtocolError`]: pba_core::protocol::ProtocolError

use pba_bench::chaos::{default_cases, ChaosCase};
use pba_core::protocol::{AdversaryProfile, BaConfig, Establishment, KeyPolicy, Session};
use pba_crypto::sha256::Digest;
use pba_srds::snark::SnarkSrds;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Everything observable about one run: the structured outcome (or panic
/// payload), the per-round staged-envelope transcript, and the metrics
/// report.
struct RunRecord {
    outcome: String,
    transcript: Vec<Digest>,
    report: String,
}

/// Runs one chaos case through the `Session` API with the given worker
/// count, recording the transcript of every delivered round after
/// establishment (the threaded region).
fn run_with_threads(case: &ChaosCase, threads: usize) -> RunRecord {
    let config = BaConfig {
        n: case.n,
        z: 2,
        corruption: case.plan.clone(),
        profile: AdversaryProfile::Byzantine,
        seed: case.seed.clone(),
        establishment: case.establishment,
        chaos: Some(case.spec.clone()),
        threads,
        key_policy: KeyPolicy::Eager,
        dense_shadow: false,
    };
    let scheme = SnarkSrds::with_defaults();
    let inputs = vec![1u8; case.n];
    let run = catch_unwind(AssertUnwindSafe(|| {
        let mut session = match Session::try_establish(&scheme, &config) {
            Ok(session) => session,
            Err(e) => {
                return RunRecord {
                    outcome: format!("establish failed: {e:?}"),
                    transcript: Vec::new(),
                    report: String::new(),
                }
            }
        };
        session.net.enable_transcript();
        let committee_inputs = session.robust_committee_inputs(&inputs);
        let result = session.try_certified_round(&committee_inputs);
        RunRecord {
            outcome: format!("{result:?}"),
            transcript: session
                .net
                .transcript()
                .expect("transcript enabled")
                .to_vec(),
            report: format!("{:?}", session.net.report()),
        }
    }));
    match run {
        Ok(record) => record,
        Err(payload) => {
            let detail = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".into());
            RunRecord {
                outcome: format!("panic: {detail}"),
                transcript: Vec::new(),
                report: String::new(),
            }
        }
    }
}

/// Compares two transcripts, naming the first diverging round on failure.
fn assert_same_transcript(case: &ChaosCase, threads: usize, seq: &[Digest], par: &[Digest]) {
    if seq == par {
        return;
    }
    let first_diff = seq
        .iter()
        .zip(par.iter())
        .position(|(a, b)| a != b)
        .unwrap_or_else(|| seq.len().min(par.len()));
    panic!(
        "case [{}] threads={}: transcript diverges at round {} \
         (sequential has {} rounds, parallel has {})\n{}",
        case.key(),
        threads,
        first_diff,
        seq.len(),
        par.len(),
        case.repro(),
    );
}

/// The differential core: the sequential run is the reference, and every
/// parallel worker count must reproduce it exactly.
fn check_cases(cases: &[ChaosCase]) {
    for case in cases {
        let reference = run_with_threads(case, 1);
        assert!(
            !reference.transcript.is_empty() || !reference.outcome.starts_with("Ok"),
            "case [{}]: reference run recorded no rounds",
            case.key()
        );
        for threads in [0usize, 2, 4, 7, 64] {
            let parallel = run_with_threads(case, threads);
            assert_same_transcript(case, threads, &reference.transcript, &parallel.transcript);
            assert_eq!(
                reference.outcome,
                parallel.outcome,
                "case [{}] threads={}: outcome diverged\n{}",
                case.key(),
                threads,
                case.repro(),
            );
            assert_eq!(
                reference.report,
                parallel.report,
                "case [{}] threads={}: metrics diverged\n{}",
                case.key(),
                threads,
                case.repro(),
            );
        }
    }
}

/// The full strategy catalogue × {random placement, leaf-committee
/// takeover} at n = 48, plus the dedicated timing rows — every charged
/// n = 48 case of the chaos matrix.
fn equivalence_cases() -> Vec<ChaosCase> {
    let cases: Vec<ChaosCase> = default_cases(b"parallel-eq")
        .into_iter()
        .filter(|c| c.n == 48 && c.establishment == Establishment::Charged)
        .collect();
    assert!(
        cases.len() >= 20,
        "expected the full catalogue x placement block, got {}",
        cases.len()
    );
    cases
}

// The block is split into four chunks so the test harness can run them on
// separate threads; together they cover every case exactly once.

#[test]
fn parallel_equivalence_chunk_0() {
    let cases = equivalence_cases();
    check_cases(&cases.iter().step_by(4).cloned().collect::<Vec<_>>());
}

#[test]
fn parallel_equivalence_chunk_1() {
    let cases = equivalence_cases();
    check_cases(&cases.iter().skip(1).step_by(4).cloned().collect::<Vec<_>>());
}

#[test]
fn parallel_equivalence_chunk_2() {
    let cases = equivalence_cases();
    check_cases(&cases.iter().skip(2).step_by(4).cloned().collect::<Vec<_>>());
}

#[test]
fn parallel_equivalence_chunk_3() {
    let cases = equivalence_cases();
    check_cases(&cases.iter().skip(3).step_by(4).cloned().collect::<Vec<_>>());
}
