//! End-to-end tests of the two classic sub-protocols `π_ba` builds on:
//! Dolev–Strong broadcast ([`pba_core::dolev_strong`]) and phase-king
//! agreement ([`pba_core::phase_king`]), at n = 16 with f ∈ {0, 4}
//! faults. Beyond agreement and validity, the *metered* round counts are
//! checked against the textbook bounds — t + 1 communication rounds for
//! Dolev–Strong (decision lands one round later), 3(t + 1) + 1 rounds
//! for phase-king — so a regression that silently adds rounds fails here.

use pba_core::dolev_strong::run_dolev_strong;
use pba_core::phase_king::{max_faults, rounds_for, PhaseKing};
use pba_crypto::prg::Prg;
use pba_net::faults::StrategySpec;
use pba_net::runner::run_phase;
use pba_net::{Machine, Network, PartyId, SilentAdversary};
use std::collections::{BTreeMap, BTreeSet};

const N: usize = 16;

/// Silent-corrupt set used across the f = 4 cases: a structured spread
/// (not a prefix) so faults land on relayers and non-relayers alike.
fn four_faults() -> BTreeSet<PartyId> {
    [3u64, 7, 11, 14].into_iter().map(PartyId).collect()
}

/// Runs phase-king over the full n-party committee with the given
/// corrupt set and per-party inputs; returns honest outputs and the
/// metered round count.
fn run_phase_king(
    corrupt: &BTreeSet<PartyId>,
    inputs: impl Fn(PartyId) -> u8,
    adversarial: bool,
    seed: &[u8],
) -> (Vec<Option<u8>>, u64) {
    let committee: Vec<PartyId> = (0..N as u64).map(PartyId).collect();
    let mut machines: BTreeMap<PartyId, PhaseKing<u8>> = committee
        .iter()
        .filter(|p| !corrupt.contains(p))
        .map(|&p| (p, PhaseKing::new(committee.clone(), p, inputs(p))))
        .collect();
    let mut net = Network::new(N);
    let prg = Prg::from_seed_label(seed, "classic-e2e");
    let mut adversary = if adversarial {
        StrategySpec::Equivocate.build(corrupt.clone(), N, &prg)
    } else {
        Box::new(SilentAdversary::new(corrupt.iter().copied()))
    };
    let outcome = {
        let mut erased: BTreeMap<PartyId, Box<dyn Machine + Send + '_>> = machines
            .iter_mut()
            .map(|(&id, m)| (id, Box::new(m) as Box<dyn Machine + Send + '_>))
            .collect();
        run_phase(&mut net, &mut erased, adversary.as_mut(), rounds_for(N) + 6)
    };
    assert!(outcome.completed, "phase-king did not terminate");
    let outputs = committee
        .iter()
        .map(|p| machines.get(p).and_then(|m| m.output().copied()))
        .collect();
    (outputs, outcome.rounds)
}

/// Checks that all honest slots decided the same value and returns it.
fn unanimous(outputs: &[Option<u8>], corrupt: &BTreeSet<PartyId>) -> u8 {
    let honest: Vec<u8> = outputs
        .iter()
        .enumerate()
        .filter(|(i, _)| !corrupt.contains(&PartyId(*i as u64)))
        .map(|(i, o)| o.unwrap_or_else(|| panic!("honest party {i} undecided")))
        .collect();
    assert_eq!(honest.len(), N - corrupt.len());
    for &v in &honest {
        assert_eq!(v, honest[0], "honest disagreement: {outputs:?}");
    }
    honest[0]
}

// ---- Dolev–Strong ----

#[test]
fn dolev_strong_no_faults_agrees_within_bound() {
    let t = 0;
    let out = run_dolev_strong(N, t, PartyId(2), 1, &BTreeSet::new(), b"ds-f0");
    let decided = unanimous(&out.outputs, &BTreeSet::new());
    assert_eq!(decided, 1, "validity: honest sender's value must win");
    // Textbook: t + 1 communication rounds. The meter adds two — the
    // round in which parties apply the decision rule, and the runner's
    // final sweep that observes every machine done — so it reads exactly
    // t + 3 and any extra communication round would fail this.
    assert_eq!(
        out.report.rounds,
        t as u64 + 3,
        "f=0 round meter off textbook t+1 (+2 metering)"
    );
}

#[test]
fn dolev_strong_four_faults_agrees_within_bound() {
    let t = 4;
    let corrupt = four_faults();
    assert!(!corrupt.contains(&PartyId(2)), "sender stays honest");
    let out = run_dolev_strong(N, t, PartyId(2), 1, &corrupt, b"ds-f4");
    let decided = unanimous(&out.outputs, &corrupt);
    assert_eq!(decided, 1, "validity with an honest sender");
    assert_eq!(
        out.report.rounds,
        t as u64 + 3,
        "f=4 round meter off textbook t+1 (+2 metering)"
    );
}

#[test]
fn dolev_strong_round_meter_grows_with_t() {
    // The protocol must actually *use* its t+1 rounds (it cannot decide
    // early and still resist rushing chains), so the meter is exact.
    let r1 = run_dolev_strong(N, 1, PartyId(0), 1, &BTreeSet::new(), b"ds-t1")
        .report
        .rounds;
    let r4 = run_dolev_strong(N, 4, PartyId(0), 1, &BTreeSet::new(), b"ds-t4")
        .report
        .rounds;
    assert!(r4 > r1, "round meter flat: t=1 -> {r1}, t=4 -> {r4}");
}

// ---- Phase-king ----

#[test]
fn phase_king_no_faults_validity_within_bound() {
    let corrupt = BTreeSet::new();
    let (outputs, rounds) = run_phase_king(&corrupt, |_| 1, false, b"pk-f0");
    assert_eq!(unanimous(&outputs, &corrupt), 1, "unanimous input sticks");
    assert!(
        rounds <= rounds_for(N),
        "f=0 took {rounds} rounds (textbook bound {})",
        rounds_for(N)
    );
}

#[test]
fn phase_king_four_silent_faults_validity_within_bound() {
    let corrupt = four_faults();
    assert!(corrupt.len() <= max_faults(N), "within the n/3 bound");
    let (outputs, rounds) = run_phase_king(&corrupt, |_| 1, false, b"pk-f4");
    assert_eq!(
        unanimous(&outputs, &corrupt),
        1,
        "crash faults cannot break unanimous validity"
    );
    assert!(
        rounds <= rounds_for(N),
        "f=4 took {rounds} rounds (textbook bound {})",
        rounds_for(N)
    );
}

#[test]
fn phase_king_four_equivocators_agree_on_split_input() {
    // Split honest inputs + actively equivocating faults: agreement (and
    // the round bound) must still hold; no particular output is required.
    let corrupt = four_faults();
    let (outputs, rounds) = run_phase_king(&corrupt, |p| (p.0 % 2) as u8, true, b"pk-eq4");
    let decided = unanimous(&outputs, &corrupt);
    assert!(decided <= 1, "output {decided} not an input bit");
    assert!(
        rounds <= rounds_for(N),
        "equivocating f=4 took {rounds} rounds (textbook bound {})",
        rounds_for(N)
    );
}
