//! Security-game integration tests: the Figure 1/2 experiments across
//! seeds, schemes, and scheme-specific adversaries (count inflation,
//! certificate splicing, bare-PKI key substitution).

use pba_srds::experiments::{
    run_forgery, run_robustness, AggregateForgeryAdversary, DefaultRobustnessAdversary,
    ForgeryAdversary, ReplayRobustnessAdversary, RobustnessAdversary,
};
use pba_srds::snark::{SnarkSignature, SnarkSrds};
use polylog_ba::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

#[test]
fn robustness_sweep_owf() {
    let scheme = OwfSrds::with_defaults();
    for seed in 0..5u8 {
        let out = run_robustness(&scheme, 200, 20, &mut DefaultRobustnessAdversary, &[seed])
            .expect("well-posed");
        assert!(out.verified, "seed {seed}: {out:?}");
    }
}

#[test]
fn robustness_sweep_snark() {
    let scheme = SnarkSrds::with_defaults();
    for seed in 0..5u8 {
        let out = run_robustness(&scheme, 150, 15, &mut ReplayRobustnessAdversary, &[seed])
            .expect("well-posed");
        assert!(out.verified, "seed {seed}: {out:?}");
    }
}

#[test]
fn forgery_sweep_both() {
    for seed in 0..5u8 {
        let owf = OwfSrds::with_defaults();
        let out = run_forgery(
            &owf,
            240,
            24,
            &mut AggregateForgeryAdversary::default(),
            &[seed],
        )
        .expect("well-posed");
        assert!(!out.forged, "OWF forged at seed {seed}");

        let snark = SnarkSrds::with_defaults();
        let out = run_forgery(
            &snark,
            120,
            12,
            &mut AggregateForgeryAdversary::default(),
            &[seed],
        )
        .expect("well-posed");
        assert!(!out.forged, "SNARK forged at seed {seed}");
    }
}

/// A SNARK-specific robustness adversary: bad nodes try to *inflate* their
/// children's counts by mangling the certificate fields (the proof no
/// longer matches, so honest parents must filter it — robustness must
/// still hold through the remaining good paths).
struct CountInflationAdversary;

impl RobustnessAdversary<SnarkSrds> for CountInflationAdversary {
    fn bad_aggregate(
        &mut self,
        _scheme: &SnarkSrds,
        _board: &PkiBoard<SnarkSrds>,
        _level: usize,
        _node: usize,
        children: &[SnarkSignature],
    ) -> Option<SnarkSignature> {
        match children.first()? {
            SnarkSignature::Agg(cert) => {
                let mut inflated = cert.clone();
                inflated.count = inflated.count.saturating_mul(10);
                Some(SnarkSignature::Agg(inflated))
            }
            other => Some(other.clone()),
        }
    }
}

#[test]
fn count_inflation_neither_breaks_robustness_nor_forges() {
    let scheme = SnarkSrds::with_defaults();
    let out = run_robustness(&scheme, 150, 15, &mut CountInflationAdversary, b"inflate")
        .expect("well-posed");
    assert!(out.verified, "inflation broke robustness: {out:?}");
}

/// A bare-PKI forgery adversary that *replaces corrupted keys* after seeing
/// the whole board (Figure 2, step A.4b) and then mounts the aggregate
/// forgery. Replacement keys are fully controlled (the adversary holds
/// their signing keys).
struct KeyReplacingForger {
    inner: AggregateForgeryAdversary,
}

impl ForgeryAdversary<SnarkSrds> for KeyReplacingForger {
    fn replace_keys(
        &mut self,
        scheme: &SnarkSrds,
        corrupt: &BTreeSet<u64>,
        board: &mut PkiBoard<SnarkSrds>,
        prg: &mut Prg,
    ) {
        for &i in corrupt {
            let (vk, sk) = scheme.keygen(&board.pp, prg);
            board.vks[i as usize] = vk;
            board.sks[i as usize] = sk;
        }
    }

    fn choose_challenge(
        &mut self,
        n: usize,
        corrupt: &BTreeSet<u64>,
        prg: &mut Prg,
    ) -> (Vec<u8>, BTreeMap<u64, Vec<u8>>) {
        ForgeryAdversary::<SnarkSrds>::choose_challenge(&mut self.inner, n, corrupt, prg)
    }

    fn forge(
        &mut self,
        scheme: &SnarkSrds,
        board: &PkiBoard<SnarkSrds>,
        keys: &<SnarkSrds as Srds>::KeyBoard,
        corrupt: &BTreeSet<u64>,
        message: &[u8],
        honest: &BTreeMap<u64, SnarkSignature>,
    ) -> Option<(Vec<u8>, SnarkSignature)> {
        ForgeryAdversary::<SnarkSrds>::forge(
            &mut self.inner,
            scheme,
            board,
            keys,
            corrupt,
            message,
            honest,
        )
    }
}

#[test]
fn bare_pki_key_replacement_does_not_enable_forgery() {
    let scheme = SnarkSrds::with_defaults();
    let mut adversary = KeyReplacingForger {
        inner: AggregateForgeryAdversary::default(),
    };
    let out = run_forgery(&scheme, 120, 12, &mut adversary, b"replace").expect("well-posed");
    assert!(!out.forged, "key replacement enabled forgery: {out:?}");
}

#[test]
fn robustness_certificate_is_succinct_across_sizes() {
    let scheme = SnarkSrds::with_defaults();
    let mut sizes = Vec::new();
    for n in [100usize, 400] {
        let out = run_robustness(&scheme, n, n / 10, &mut DefaultRobustnessAdversary, b"size")
            .expect("well-posed");
        assert!(out.verified);
        sizes.push(out.root_signature_len.unwrap());
    }
    assert_eq!(
        sizes[0], sizes[1],
        "certificate size not constant: {sizes:?}"
    );
}

#[test]
fn owf_succinctness_bound() {
    // OWF certificates are polylog·poly(κ): check against the Def. 2.2
    // bound with a per-scheme base.
    let scheme = OwfSrds::with_defaults();
    let out = run_robustness(&scheme, 400, 40, &mut DefaultRobustnessAdversary, b"bound")
        .expect("well-posed");
    assert!(out.verified);
    let len = out.root_signature_len.unwrap();
    assert!(
        pba_srds::traits::check_succinctness(len, 400, 4096),
        "OWF certificate {len} exceeds polylog bound"
    );
}
