//! Property-based tests over the almost-everywhere communication tree:
//! the structural invariants of Definitions 2.3 and 3.4 must hold for any
//! size, membership multiplicity, seed, and corruption set.

use pba_aetree::analysis::TreeAnalysis;
use pba_aetree::params::TreeParams;
use pba_aetree::tree::Tree;
use pba_crypto::prg::Prg;
use pba_net::corruption::CorruptionPlan;
use pba_net::PartyId;
use proptest::prelude::*;
use std::collections::BTreeSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn structural_invariants(n in 8usize..600, z in 1usize..4, seed in any::<[u8; 8]>()) {
        let params = TreeParams::scaled(n, z);
        prop_assert!(params.validate().is_ok());
        let tree = Tree::build(&params, &seed);

        // Every party occupies at least z slots; slots partition exactly.
        let mut total = 0usize;
        for p in 0..n as u64 {
            let slots = tree.party_slots(PartyId(p));
            prop_assert!(slots.len() >= z);
            total += slots.len();
        }
        prop_assert_eq!(total, params.total_slots());

        // Children ranges partition parents (planar contiguous IDs).
        for level in 1..tree.height() {
            for node in 0..tree.nodes_at_level(level) {
                let parent_range = tree.node_range(level, node);
                let mut cursor = parent_range.start;
                for child in tree.children(level, node) {
                    let cr = tree.node_range(level - 1, child);
                    prop_assert_eq!(cr.start, cursor);
                    cursor = cr.end;
                }
                prop_assert_eq!(cursor, parent_range.end);
            }
        }

        // Leaf committees are exactly the slot owners.
        for leaf in 0..params.leaf_count {
            let committee = tree.committee(0, leaf);
            prop_assert_eq!(committee.len(), params.leaf_slots);
            for (i, slot) in tree.leaf_range(leaf).enumerate() {
                prop_assert_eq!(committee[i], tree.slot_party(slot));
            }
        }
    }

    #[test]
    fn analysis_consistency(
        n in 30usize..400,
        z in 1usize..4,
        beta_pct in 0usize..25,
        seed in any::<[u8; 8]>(),
    ) {
        let params = TreeParams::scaled(n, z);
        let tree = Tree::build(&params, &seed);
        let t = n * beta_pct / 100;
        let mut prg = Prg::from_seed_bytes(&seed);
        let corrupt = CorruptionPlan::Random { t }.materialize(n, &mut prg);
        let analysis = TreeAnalysis::analyze(&tree, &corrupt);

        // Goodness is monotone: no corruption => all good.
        if corrupt.is_empty() {
            prop_assert!(analysis.root_good());
            prop_assert_eq!(analysis.good_leaf_fraction(), 1.0);
            prop_assert!(analysis.isolated().is_empty());
        }

        // A leaf with a good path must itself be good and have a good root.
        for leaf in 0..params.leaf_count {
            if analysis.leaf_has_good_path(leaf) {
                prop_assert!(analysis.is_good(0, leaf));
                prop_assert!(analysis.root_good());
            }
        }

        // Isolated parties: every non-isolated honest party has a strict
        // majority of good-path leaf memberships.
        for p in 0..n as u64 {
            let party = PartyId(p);
            if corrupt.contains(&party) || analysis.isolated().contains(&party) {
                continue;
            }
            let slots = tree.party_slots(party);
            let good = slots
                .iter()
                .filter(|&&s| analysis.leaf_has_good_path(tree.slot_leaf(s)))
                .count();
            prop_assert!(2 * good > slots.len());
        }
    }

    #[test]
    fn corrupting_more_never_helps(n in 60usize..300, seed in any::<[u8; 8]>()) {
        // Good-leaf fraction is monotone non-increasing in the corrupt set.
        let params = TreeParams::scaled(n, 2);
        let tree = Tree::build(&params, &seed);
        let mut prg = Prg::from_seed_bytes(&seed);
        let small = CorruptionPlan::Random { t: n / 20 }.materialize(n, &mut prg);
        let mut big: BTreeSet<PartyId> = small.clone();
        for extra in (CorruptionPlan::Random { t: n / 10 }).materialize(n, &mut prg) {
            big.insert(extra);
        }
        let a_small = TreeAnalysis::analyze(&tree, &small);
        let a_big = TreeAnalysis::analyze(&tree, &big);
        prop_assert!(a_big.good_leaf_fraction() <= a_small.good_leaf_fraction());
        prop_assert!(a_small.isolated().iter().filter(|p| !big.contains(p)).all(|p| a_big.isolated().contains(p)));
    }

    #[test]
    fn identity_layout_matches_for_slots(n in 16usize..400, seed in any::<[u8; 8]>()) {
        let params = TreeParams::for_slots(n);
        let tree = Tree::build_identity(&params, &seed);
        for s in 0..params.total_slots() as u64 {
            prop_assert_eq!(tree.slot_party(s), PartyId(s));
        }
    }

    #[test]
    fn paper_exact_structure_holds(n in 8usize..80) {
        let params = TreeParams::paper_exact(n);
        prop_assert!(params.validate().is_ok());
        prop_assert!(params.total_slots() >= n * params.z);
    }
}
