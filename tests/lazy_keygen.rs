//! ISSUE 8 satellite: key instantiation policy is observationally
//! invisible. Eager (all n·(z+2) keypairs at establishment) and Lazy
//! (re-derived from the same pure PRG children at the moment of signing)
//! must produce bit-identical transcripts, outcomes, and reports; the
//! Sampled policy — which withholds key material from parties whose
//! every leaf path crosses a majority-corrupted committee — must fail
//! with a structured [`KeyError`], never a panic, when such a party's
//! key is touched.

use pba_aetree::robust::dedup_committee;
use pba_core::protocol::{AdversaryProfile, BaConfig, Establishment, KeyError, KeyPolicy, Session};
use pba_crypto::sha256::Digest;
use pba_net::corruption::CorruptionPlan;
use pba_net::PartyId;
use pba_srds::snark::SnarkSrds;
use std::collections::BTreeSet;

fn config(n: usize, establishment: Establishment, policy: KeyPolicy) -> BaConfig {
    BaConfig {
        n,
        z: 2,
        corruption: CorruptionPlan::Random { t: n / 8 },
        profile: AdversaryProfile::Byzantine,
        seed: b"lazy-keygen-equivalence".to_vec(),
        establishment,
        chaos: None,
        threads: 1,
        key_policy: policy,
        dense_shadow: false,
    }
}

struct RunRecord {
    outcome: String,
    transcript: Vec<Digest>,
    report: String,
    breakdown: String,
}

/// One full run (establishment + certified round) through the `Session`
/// API with the staged-delivery transcript recorded.
fn run(config: &BaConfig) -> RunRecord {
    let scheme = SnarkSrds::with_defaults();
    let mut session = Session::try_establish(&scheme, config).expect("establishment");
    session.net.enable_transcript();
    let inputs = vec![1u8; config.n];
    let committee_inputs = session.robust_committee_inputs(&inputs);
    let round = session.try_certified_round(&committee_inputs);
    RunRecord {
        outcome: format!("{round:?}"),
        transcript: session
            .net
            .transcript()
            .map(|t| t.to_vec())
            .unwrap_or_default(),
        report: format!("{:?}", session.report()),
        breakdown: format!("{:?}", session.breakdown()),
    }
}

#[test]
fn eager_and_lazy_are_bit_identical() {
    for n in [64usize, 256] {
        for establishment in [Establishment::Charged, Establishment::Interactive] {
            let eager = run(&config(n, establishment, KeyPolicy::Eager));
            let lazy = run(&config(n, establishment, KeyPolicy::Lazy));
            assert!(
                !eager.transcript.is_empty(),
                "n={n} {establishment:?}: no rounds delivered"
            );
            assert_eq!(
                eager.transcript, lazy.transcript,
                "n={n} {establishment:?}: transcripts diverge"
            );
            assert_eq!(
                eager.outcome, lazy.outcome,
                "n={n} {establishment:?}: outcomes diverge"
            );
            assert_eq!(
                eager.report, lazy.report,
                "n={n} {establishment:?}: reports diverge"
            );
            assert_eq!(
                eager.breakdown, lazy.breakdown,
                "n={n} {establishment:?}: tag breakdowns diverge"
            );
        }
    }
}

/// The Sampled policy skips signing for seats whose leaf path is already
/// lost to a corrupt committee majority — votes the robust ascent would
/// discard anyway — so the protocol *verdict* must match Eager even
/// though the metering differs.
#[test]
fn sampled_policy_preserves_the_verdict() {
    let n = 64;
    let eager = run(&config(n, Establishment::Charged, KeyPolicy::Eager));
    let sampled = run(&config(n, Establishment::Charged, KeyPolicy::Sampled));
    assert_eq!(
        eager.outcome, sampled.outcome,
        "withheld off-path keys changed the round outcome"
    );
}

#[test]
fn sampled_off_path_key_is_a_structured_error() {
    let n = 64;
    let scheme = SnarkSrds::with_defaults();

    // The charged tree depends only on the seed, never on the corruption
    // plan, so a corruption-free probe session exposes the committees the
    // adversarial session below will have.
    let mut probe_config = config(n, Establishment::Charged, KeyPolicy::Eager);
    probe_config.corruption = CorruptionPlan::None;
    probe_config.profile = AdversaryProfile::Passive;
    let probe = Session::try_establish(&scheme, &probe_config).expect("probe establishment");
    let root_level = probe.tree().height() - 1;
    let supreme = dedup_committee(probe.tree().committee(root_level, 0));

    // Corrupt a (non-strict-minority) half of the supreme committee: every
    // leaf path crosses the root, so no leaf is viable and *no* party is
    // instantiable under Sampled.
    let bad: BTreeSet<PartyId> = supreme
        .iter()
        .take(supreme.len().div_ceil(2))
        .copied()
        .collect();
    assert!(
        3 * bad.len() < n,
        "test construction: {} corruptions exceed the n/3 bound at n={n}",
        bad.len()
    );
    let mut cfg = config(n, Establishment::Charged, KeyPolicy::Sampled);
    cfg.corruption = CorruptionPlan::Explicit(bad);
    let session = Session::try_establish(&scheme, &cfg).expect("establishment");

    let err = session
        .signing_key(PartyId(0), 0)
        .expect_err("party 0 must be uninstantiated when the root is majority-corrupt");
    assert_eq!(
        err,
        KeyError::NotInstantiated {
            party: PartyId(0),
            key_index: 0
        }
    );
    assert!(
        err.to_string().contains("not instantiated"),
        "error display: {err}"
    );

    // Positive control: the same run under Lazy derives the key fine.
    let mut lazy_cfg = cfg.clone();
    lazy_cfg.key_policy = KeyPolicy::Lazy;
    let lazy_session = Session::try_establish(&scheme, &lazy_cfg).expect("establishment");
    assert!(lazy_session.signing_key(PartyId(0), 0).is_ok());
}
