//! Property-based checks of the parallel round engine: for *arbitrary*
//! seeds, thread counts, committee sizes, and fault-injection strategies,
//! [`pba_net::run_phase_threaded`] must be observationally identical to
//! the sequential engine (same outputs, same staged-envelope transcript,
//! same metrics report), and the process-wide hot-path cache counters
//! must be monotone non-decreasing under any operation sequence.

use pba_core::phase_king::{rounds_for, PhaseKing};
use pba_crypto::merkle::{proof_cache_stats, MerkleTree};
use pba_crypto::prg::Prg;
use pba_crypto::sha256::{Digest, Sha256};
use pba_net::faults::StrategySpec;
use pba_net::runner::run_phase_threaded;
use pba_net::{Machine, Network, PartyId};
use pba_srds::{cert_cache_stats, CertCache};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// One phase-king run against a chaos adversary, returning everything an
/// observer could compare: per-party outputs, the delivered-round
/// transcript, and the metrics report (with phase outcome folded in).
fn run_once(
    n: usize,
    t: usize,
    spec: &StrategySpec,
    seed: &[u8],
    threads: usize,
) -> (Vec<Option<u8>>, Vec<Digest>, String) {
    let prg = Prg::from_seed_label(seed, "proptest-parallel");
    let committee: Vec<PartyId> = (0..n as u64).map(PartyId).collect();
    // Deterministic structured placement: every third party, up to `t`.
    let corrupted: BTreeSet<PartyId> = (0..n as u64)
        .filter(|i| i % 3 == 1)
        .take(t)
        .map(PartyId)
        .collect();
    let mut adversary = spec.build(corrupted.clone(), n, &prg.child("adv", 0));
    let mut machines: BTreeMap<PartyId, PhaseKing<u8>> = committee
        .iter()
        .filter(|p| !corrupted.contains(p))
        .map(|&p| (p, PhaseKing::new(committee.clone(), p, (p.0 % 2) as u8)))
        .collect();
    let mut net = Network::new(n);
    net.enable_transcript();
    let outcome = {
        let mut erased: BTreeMap<PartyId, Box<dyn Machine + Send + '_>> = machines
            .iter_mut()
            .map(|(&id, m)| (id, Box::new(m) as Box<dyn Machine + Send + '_>))
            .collect();
        run_phase_threaded(
            &mut net,
            &mut erased,
            adversary.as_mut(),
            rounds_for(n) + 6,
            threads,
        )
    };
    let outputs: Vec<Option<u8>> = committee
        .iter()
        .map(|p| machines.get(p).and_then(|m| m.output().copied()))
        .collect();
    let report = format!(
        "{:?} rounds={} completed={}",
        net.report(),
        outcome.rounds,
        outcome.completed
    );
    (
        outputs,
        net.transcript().expect("transcript enabled").to_vec(),
        report,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Thread-count invariance: any worker count reproduces the
    /// sequential run bit for bit, under every catalogue strategy — the
    /// degenerate knobs included (`threads = 0` aliases the sequential
    /// path; `threads = 33 > n` caps at one machine per worker instead
    /// of spawning idle stealers).
    #[test]
    fn thread_count_invariance(
        n in 6usize..24,
        t_raw in 0usize..6,
        spec_idx in 0usize..10,
        threads in prop_oneof![Just(0usize), 2usize..9, Just(33usize)],
        seed in any::<[u8; 8]>(),
    ) {
        let t = t_raw.min((n - 1) / 3);
        let catalogue = StrategySpec::catalogue();
        let spec = &catalogue[spec_idx % catalogue.len()];
        let (seq_out, seq_tr, seq_rep) = run_once(n, t, spec, &seed, 1);
        let (par_out, par_tr, par_rep) = run_once(n, t, spec, &seed, threads);
        let first_diff = seq_tr
            .iter()
            .zip(par_tr.iter())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| seq_tr.len().min(par_tr.len()));
        prop_assert!(
            seq_tr == par_tr,
            "n={} t={} spec={} threads={}: transcript diverges at round {}",
            n, t, spec.label(), threads, first_diff
        );
        prop_assert_eq!(seq_out, par_out);
        prop_assert_eq!(seq_rep, par_rep);
    }

    /// The engine never makes the process-wide cache counters move
    /// backwards, whatever it executes.
    #[test]
    fn engine_keeps_cache_counters_monotone(
        n in 6usize..16,
        threads in 1usize..5,
        seed in any::<[u8; 8]>(),
    ) {
        let before_merkle = proof_cache_stats();
        let before_cert = cert_cache_stats();
        let _ = run_once(n, 1, &StrategySpec::Equivocate, &seed, threads);
        let after_merkle = proof_cache_stats();
        let after_cert = cert_cache_stats();
        prop_assert!(after_merkle.0 >= before_merkle.0);
        prop_assert!(after_merkle.1 >= before_merkle.1);
        prop_assert!(after_cert.0 >= before_cert.0);
        prop_assert!(after_cert.1 >= before_cert.1);
    }

    /// Arbitrary Merkle proof sequences: hit/miss counters are monotone
    /// after every single operation, and cached proofs stay correct.
    #[test]
    fn merkle_cache_counters_monotone_per_op(
        leaves in 1usize..40,
        indices in proptest::collection::vec(0usize..64, 1..30),
    ) {
        let payloads: Vec<Vec<u8>> =
            (0..leaves as u64).map(|i| i.to_le_bytes().to_vec()).collect();
        let tree = MerkleTree::from_leaves(payloads.iter());
        let mut prev = proof_cache_stats();
        for raw in indices {
            let idx = raw % leaves;
            let proof = tree.prove(idx);
            prop_assert!(proof.verify(&tree.root(), &payloads[idx]));
            let cur = proof_cache_stats();
            prop_assert!(cur.0 >= prev.0, "hits went backwards");
            prop_assert!(cur.1 >= prev.1, "misses went backwards");
            prop_assert!(
                cur.0 + cur.1 > prev.0 + prev.1,
                "a prove() must count as a hit or a miss"
            );
            prev = cur;
        }
    }

    /// Arbitrary certificate-cache lookup sequences: counters are
    /// monotone and the cached verdict always matches the first one.
    #[test]
    fn cert_cache_counters_monotone_per_op(
        keys in proptest::collection::vec(any::<[u8; 4]>(), 1..30),
    ) {
        let cache = CertCache::new();
        let mut expected: BTreeMap<Digest, bool> = BTreeMap::new();
        let mut prev = cert_cache_stats();
        for raw in keys {
            let key = Sha256::digest(&raw);
            let verdict = raw[0] % 2 == 0;
            let got = cache.get_or_verify(key, || verdict);
            let want = *expected.entry(key).or_insert(verdict);
            prop_assert_eq!(got, want, "cached verdict changed");
            let cur = cert_cache_stats();
            prop_assert!(cur.0 >= prev.0, "hits went backwards");
            prop_assert!(cur.1 >= prev.1, "misses went backwards");
            prev = cur;
        }
    }
}
