//! Property-based end-to-end tests: `π_ba` must provide agreement and
//! validity for random sizes, inputs, corruption patterns, and adversary
//! profiles. Cases are kept small — each case is a full protocol run.

use pba_net::corruption::CorruptionPlan;
use polylog_ba::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn pi_ba_agreement_and_validity_snark(
        n in 48usize..110,
        beta_pct in 0usize..10,
        byzantine in any::<bool>(),
        unanimous in any::<bool>(),
        bit in 0u8..2,
        seed in any::<[u8; 8]>(),
    ) {
        let t = n * beta_pct / 100;
        let scheme = SnarkSrds::with_defaults();
        let config = BaConfig {
            n,
            z: 2,
            corruption: CorruptionPlan::Random { t },
            profile: if byzantine { AdversaryProfile::Byzantine } else { AdversaryProfile::Passive },
            seed: seed.to_vec(),
            establishment: pba_core::protocol::Establishment::Charged,
            chaos: None,
            threads: 1,
            key_policy: KeyPolicy::Eager,
            dense_shadow: false,
        };
        let inputs: Vec<u8> = if unanimous {
            vec![bit; n]
        } else {
            (0..n).map(|i| (i % 2) as u8).collect()
        };
        let out = run_ba(&scheme, &config, &inputs);
        prop_assert!(out.agreement, "outputs: {:?}", out.outputs);
        prop_assert!(out.validity);
        if unanimous {
            prop_assert_eq!(out.output, Some(bit));
        }
    }

    #[test]
    fn pi_ba_agreement_owf(
        n in 48usize..100,
        beta_pct in 0usize..10,
        bit in 0u8..2,
        seed in any::<[u8; 8]>(),
    ) {
        let t = n * beta_pct / 100;
        let scheme = OwfSrds::with_defaults();
        let config = BaConfig {
            n,
            z: 2,
            corruption: CorruptionPlan::Random { t },
            profile: AdversaryProfile::Byzantine,
            seed: seed.to_vec(),
            establishment: pba_core::protocol::Establishment::Charged,
            chaos: None,
            threads: 1,
            key_policy: KeyPolicy::Eager,
            dense_shadow: false,
        };
        let out = run_ba(&scheme, &config, &vec![bit; n]);
        prop_assert!(out.agreement, "outputs: {:?}", out.outputs);
        prop_assert_eq!(out.output, Some(bit));
    }
}
