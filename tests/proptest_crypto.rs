//! Property-based tests over the cryptographic substrate.

use pba_crypto::codec::{decode_from_slice, encode_to_vec};
use pba_crypto::field::{Fp, MODULUS};
use pba_crypto::lamport::{LamportKeyPair, LamportParams};
use pba_crypto::merkle::MerkleTree;
use pba_crypto::poly::interpolate_at_zero;
use pba_crypto::prg::Prg;
use pba_crypto::sha256::{Digest, Sha256};
use pba_crypto::shamir::{reconstruct, share};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sha256_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..512), split in 0usize..512) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn digest_hex_roundtrip(bytes in any::<[u8; 32]>()) {
        let d = Digest::new(bytes);
        prop_assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
    }

    #[test]
    fn field_axioms(a in 0..MODULUS, b in 0..MODULUS, c in 0..MODULUS) {
        let (a, b, c) = (Fp::new(a), Fp::new(b), Fp::new(c));
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!((a * b) * c, a * (b * c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!(a - a, Fp::ZERO);
        if !a.is_zero() {
            prop_assert_eq!(a * a.inverse(), Fp::ONE);
        }
    }

    #[test]
    fn shamir_reconstructs_from_any_quorum(
        secret in 0..MODULUS,
        threshold in 1usize..5,
        extra in 0usize..4,
        seed in any::<[u8; 8]>(),
    ) {
        let n = threshold + 1 + extra;
        let mut prg = Prg::from_seed_bytes(&seed);
        let shares = share(Fp::new(secret), threshold, n, &mut prg);
        // Take an arbitrary (threshold+1)-subset: the last one.
        let subset = &shares[extra..];
        prop_assert_eq!(reconstruct(subset).unwrap(), Fp::new(secret));
    }

    #[test]
    fn lagrange_interpolation_is_exact(
        secret in 0..MODULUS,
        degree in 0usize..6,
        seed in any::<[u8; 8]>(),
    ) {
        let mut prg = Prg::from_seed_bytes(&seed);
        let poly = pba_crypto::poly::Polynomial::random_with_constant(Fp::new(secret), degree, &mut prg);
        let points: Vec<(Fp, Fp)> = (1..=degree as u64 + 1)
            .map(|x| (Fp::new(x), poly.eval(Fp::new(x))))
            .collect();
        prop_assert_eq!(interpolate_at_zero(&points), Fp::new(secret));
    }

    #[test]
    fn merkle_proofs_verify_and_bind(
        leaves in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..32), 1..40),
        index in 0usize..40,
        tamper in any::<u8>(),
    ) {
        let index = index % leaves.len();
        let tree = MerkleTree::from_leaves(leaves.iter());
        let proof = tree.prove(index);
        prop_assert!(proof.verify(&tree.root(), &leaves[index]));
        // Tampered leaf fails (unless the tamper is a no-op).
        let mut tampered = leaves[index].clone();
        tampered.push(tamper);
        prop_assert!(!proof.verify(&tree.root(), &tampered));
    }

    #[test]
    fn codec_roundtrip_nested(
        v in proptest::collection::vec((any::<u64>(), proptest::collection::vec(any::<u8>(), 0..16)), 0..16),
    ) {
        let encoded = encode_to_vec(&v);
        let decoded: Vec<(u64, Vec<u8>)> = decode_from_slice(&encoded).unwrap();
        prop_assert_eq!(decoded, v);
    }

    #[test]
    fn codec_rejects_any_truncation(value in any::<u64>(), tail in proptest::collection::vec(any::<u8>(), 1..8)) {
        let mut bytes = encode_to_vec(&(value, tail));
        bytes.pop();
        let r: Result<(u64, Vec<u8>), _> = decode_from_slice(&bytes);
        prop_assert!(r.is_err());
    }

    #[test]
    fn lamport_signs_only_its_message(seed in any::<[u8; 8]>(), m1 in any::<[u8; 12]>(), m2 in any::<[u8; 12]>()) {
        prop_assume!(m1 != m2);
        let params = LamportParams::new(32);
        let mut prg = Prg::from_seed_bytes(&seed);
        let kp = LamportKeyPair::generate(&params, &mut prg);
        let sig = kp.sign(&m1);
        prop_assert!(params.verify(&kp.verification_key(), &m1, &sig));
        // 32-bit truncated digests collide with prob 2^-32: negligible for
        // the case count here.
        prop_assert!(!params.verify(&kp.verification_key(), &m2, &sig));
    }

    #[test]
    fn prg_streams_are_deterministic_and_label_separated(
        seed in any::<[u8; 16]>(),
        la in "[a-z]{1,8}",
        lb in "[a-z]{1,8}",
    ) {
        let mut a1 = Prg::from_seed_label(&seed, &la);
        let mut a2 = Prg::from_seed_label(&seed, &la);
        prop_assert_eq!(a1.next_digest(), a2.next_digest());
        if la != lb {
            let mut b = Prg::from_seed_label(&seed, &lb);
            let mut a3 = Prg::from_seed_label(&seed, &la);
            prop_assert_ne!(a3.next_digest(), b.next_digest());
        }
    }

    #[test]
    fn sample_distinct_is_distinct_and_in_range(seed in any::<[u8; 8]>(), n in 1u64..500, k_frac in 0.0f64..1.0) {
        let k = ((n as f64 * k_frac) as usize).min(n as usize);
        let mut prg = Prg::from_seed_bytes(&seed);
        let sample = prg.sample_distinct(n, k);
        prop_assert_eq!(sample.len(), k);
        let set: std::collections::HashSet<_> = sample.iter().collect();
        prop_assert_eq!(set.len(), k);
        prop_assert!(sample.iter().all(|&v| v < n));
    }
}
