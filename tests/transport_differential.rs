//! Differential sim-vs-socket suite (fast tier; see DESIGN.md §3c).
//!
//! Every socket endpoint runs the full deterministic simulation and
//! substitutes authoritative socket bytes at each exchange, so the
//! in-process run over [`pba_net::LocalTransport`] is a golden oracle:
//! a correct deployment reproduces the oracle's chained delivery
//! transcript digest **exactly**, along with the full `BaOutcome` byte
//! accounting. This tier runs `k`-endpoint fleets as loopback-TCP
//! threads; `crates/bench/tests/transport_full.rs` repeats the diff with
//! real `node` processes.
//!
//! The negative half checks the never-hang/never-panic contract: peer
//! drop mid-round, connect timeout, wrong-genesis hello, and tick-base
//! skew each surface as a structured [`pba_net::TransportError`] (or a
//! [`ProtocolError::Transport`] once the protocol is running), bounded
//! by the transport watchdog timeouts.

use pba_bench::socket::{run_loopback_fleet, SocketSpec};
use pba_core::protocol::{Establishment, ProtocolError, RunOutcome, TransportRun};
use pba_net::{HelloField, PeerMap, TcpTransport, Transport, TransportError, TransportOpts};
use std::net::TcpListener;
use std::time::Duration;

/// Asserts a fleet run is byte-identical to the oracle: same transcript
/// digests, same outcome, same per-tag byte attribution.
fn assert_matches_oracle(spec: &SocketSpec, sim: &TransportRun, fleet: &[TransportRun]) {
    let sim_out = match &sim.outcome {
        RunOutcome::Completed(out) => out,
        RunOutcome::Failed { phase, reason } => {
            panic!("oracle failed (n={}) in {phase}: {reason}", spec.n)
        }
    };
    assert!(sim.final_digest().is_some(), "oracle records a transcript");
    assert!(sim_out.agreement && sim_out.validity && sim_out.tags_conserved);

    for (e, run) in fleet.iter().enumerate() {
        assert_eq!(run.kind, "tcp");
        // Digest equality is per-entry, so a mismatch would name the
        // first diverging exchange — compare the full chains.
        assert_eq!(
            run.transcript, sim.transcript,
            "endpoint {e} transcript diverged from oracle (n={}, {:?})",
            spec.n, spec.establishment
        );
        let out = match &run.outcome {
            RunOutcome::Completed(out) => out,
            RunOutcome::Failed { phase, reason } => {
                panic!("endpoint {e} failed in {phase}: {reason}")
            }
        };
        assert_eq!(out.output, sim_out.output);
        assert_eq!(out.outputs, sim_out.outputs);
        assert_eq!(out.report, sim_out.report, "metered report diverged");
        assert_eq!(out.breakdown, sim_out.breakdown, "per-tag bytes diverged");
        assert!(out.tags_conserved, "endpoint {e} tag conservation");
        if spec.k > 1 {
            assert!(run.stats.bytes_sent > 0, "endpoint {e} sent real bytes");
        }
    }
}

fn diff_cell(n: usize, k: usize, establishment: Establishment) {
    let mut spec = SocketSpec::new(n, k, &format!("diff/{n}/{k}/{}", establishment.label()));
    spec.establishment = establishment;
    let sim = spec.run_sim();
    let fleet = run_loopback_fleet(&spec);
    assert_eq!(fleet.len(), k);
    assert_matches_oracle(&spec, &sim, &fleet);
}

#[test]
fn diff_n16_charged_two_endpoints() {
    diff_cell(16, 2, Establishment::Charged);
}

#[test]
fn diff_n16_interactive_two_endpoints() {
    diff_cell(16, 2, Establishment::Interactive);
}

#[test]
fn diff_n64_charged_three_endpoints() {
    diff_cell(64, 3, Establishment::Charged);
}

#[test]
fn diff_n64_interactive_two_endpoints() {
    diff_cell(64, 2, Establishment::Interactive);
}

/// A single-endpoint "deployment" degenerates to the oracle: no sockets,
/// same digest — the base case of the substitution argument.
#[test]
fn single_endpoint_fleet_equals_oracle() {
    let spec = SocketSpec::new(16, 1, "diff/single");
    let sim = spec.run_sim();
    let fleet = run_loopback_fleet(&spec);
    assert_eq!(fleet[0].transcript, sim.transcript);
    assert_eq!(fleet[0].stats.bytes_sent, 0, "no cross-endpoint traffic");
}

/// Binds `k` loopback listeners and returns (addrs, listeners) — the
/// race-free way to assemble a test mesh.
fn bind_endpoints(k: usize) -> (Vec<String>, Vec<TcpListener>) {
    let listeners: Vec<TcpListener> = (0..k)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind"))
        .collect();
    let addrs = listeners
        .iter()
        .map(|l| l.local_addr().expect("addr").to_string())
        .collect();
    (addrs, listeners)
}

fn short_opts() -> TransportOpts {
    TransportOpts {
        connect_timeout: Duration::from_millis(2000),
        hello_timeout: Duration::from_millis(2000),
        recv_timeout: Duration::from_millis(500),
    }
}

/// A peer that completes the handshake and then vanishes mid-round: the
/// running protocol reports a structured `ProtocolError::Transport`
/// (peer-closed or watchdog) instead of hanging or panicking.
#[test]
fn peer_drop_mid_round_is_structured() {
    let spec = SocketSpec::new(16, 2, "diff/drop");
    let (addrs, listeners) = bind_endpoints(2);
    let mut listeners = listeners.into_iter();
    let l0 = listeners.next().expect("l0");
    let l1 = listeners.next().expect("l1");

    let spec1 = spec.clone();
    let addrs1 = addrs.clone();
    let quitter = std::thread::spawn(move || {
        let map = PeerMap::contiguous(spec1.n, addrs1, 1);
        let genesis = spec1.genesis(&map);
        // Handshake fully, then drop the transport: a Bye goes out and
        // the stream closes before the first exchange completes.
        let transport =
            TcpTransport::with_listener(map, genesis, spec1.tick_base, short_opts(), l1)
                .expect("mesh");
        drop(transport);
    });

    let map = PeerMap::contiguous(spec.n, addrs, 0);
    let genesis = spec.genesis(&map);
    let transport =
        TcpTransport::with_listener(map, genesis, spec.tick_base, short_opts(), l0).expect("mesh");
    let run = spec.run_over(Box::new(transport));
    quitter.join().expect("quitter");

    match &run.outcome {
        RunOutcome::Failed { reason, .. } => {
            assert!(
                matches!(
                    reason,
                    ProtocolError::Transport {
                        error: TransportError::PeerClosed { .. }
                            | TransportError::RecvTimeout { .. },
                        ..
                    }
                ),
                "expected structured transport failure, got {reason}"
            );
        }
        RunOutcome::Completed(_) => panic!("run completed over a dead peer"),
    }
}

/// A peer that meshes but never participates in exchanges: the watchdog
/// converts the silence into a bounded `RecvTimeout`.
#[test]
fn silent_peer_trips_watchdog() {
    let spec = SocketSpec::new(16, 2, "diff/silent");
    let (addrs, listeners) = bind_endpoints(2);
    let mut listeners = listeners.into_iter();
    let l0 = listeners.next().expect("l0");
    let l1 = listeners.next().expect("l1");

    let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
    let spec1 = spec.clone();
    let addrs1 = addrs.clone();
    let silent = std::thread::spawn(move || {
        let map = PeerMap::contiguous(spec1.n, addrs1, 1);
        let genesis = spec1.genesis(&map);
        let transport =
            TcpTransport::with_listener(map, genesis, spec1.tick_base, short_opts(), l1)
                .expect("mesh");
        // Hold the connection open without ever exchanging until the
        // driving endpoint has observed the timeout.
        let _ = done_rx.recv_timeout(Duration::from_secs(30));
        drop(transport);
    });

    let map = PeerMap::contiguous(spec.n, addrs, 0);
    let genesis = spec.genesis(&map);
    let mut transport =
        TcpTransport::with_listener(map, genesis, spec.tick_base, short_opts(), l0).expect("mesh");
    let started = std::time::Instant::now();
    let staged = Vec::new();
    let err = transport.exchange(0, staged).expect_err("watchdog fires");
    assert!(
        matches!(err, TransportError::RecvTimeout { seq: 0, .. }),
        "expected RecvTimeout, got {err}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "watchdog unbounded"
    );
    done_tx.send(()).ok();
    silent.join().expect("silent peer");
}

/// Nothing listens on the target: a bounded `ConnectTimeout`, not a hang.
#[test]
fn connect_timeout_is_bounded() {
    // Port 1 is privileged and unassigned: every dial is refused, and
    // nothing can race to bind it.
    let dead_addr = "127.0.0.1:1".to_string();
    let live = TcpListener::bind("127.0.0.1:0").expect("bind");
    let live_addr = live.local_addr().expect("addr").to_string();
    let map = PeerMap::contiguous(16, vec![dead_addr.clone(), live_addr], 1);
    let spec = SocketSpec::new(16, 2, "diff/connect-timeout");
    let genesis = spec.genesis(&map);
    let started = std::time::Instant::now();
    let err = TcpTransport::with_listener(
        map,
        genesis,
        0,
        TransportOpts {
            connect_timeout: Duration::from_millis(400),
            ..short_opts()
        },
        live,
    )
    .expect_err("nothing listens");
    assert_eq!(err, TransportError::ConnectTimeout { addr: dead_addr });
    assert!(started.elapsed() < Duration::from_secs(10));
}

/// Endpoints configured with different seeds derive different genesis
/// digests and reject each other at hello time — on *both* sides.
#[test]
fn wrong_genesis_hello_rejected_both_sides() {
    let (addrs, listeners) = bind_endpoints(2);
    let specs = [
        SocketSpec::new(16, 2, "diff/genesis-a"),
        SocketSpec::new(16, 2, "diff/genesis-b"),
    ];
    let handles: Vec<_> = listeners
        .into_iter()
        .enumerate()
        .map(|(e, listener)| {
            let spec = specs[e].clone();
            let addrs = addrs.clone();
            std::thread::spawn(move || {
                let map = PeerMap::contiguous(spec.n, addrs, e);
                let genesis = spec.genesis(&map);
                TcpTransport::with_listener(map, genesis, spec.tick_base, short_opts(), listener)
                    .err()
            })
        })
        .collect();
    for handle in handles {
        let err = handle.join().expect("endpoint").expect("hello must fail");
        match err {
            TransportError::Hello { mismatch, .. } => {
                assert_eq!(mismatch.field, HelloField::Genesis)
            }
            other => panic!("expected genesis mismatch, got {other}"),
        }
    }
}

/// The tick-base handshake (round-numbering agreement for cross-process
/// partial-synchrony drivers): endpoints whose drivers would number
/// rounds differently are rejected at hello time instead of drifting
/// mid-run.
#[test]
fn tick_base_skew_rejected_at_hello() {
    let (addrs, listeners) = bind_endpoints(2);
    let handles: Vec<_> = listeners
        .into_iter()
        .enumerate()
        .map(|(e, listener)| {
            let addrs = addrs.clone();
            std::thread::spawn(move || {
                let spec = SocketSpec::new(16, 2, "diff/tickbase");
                let map = PeerMap::contiguous(spec.n, addrs, e);
                let genesis = spec.genesis(&map);
                // Endpoint 1 believes rounds start at tick 7.
                let tick_base = if e == 0 { 0 } else { 7 };
                TcpTransport::with_listener(map, genesis, tick_base, short_opts(), listener).err()
            })
        })
        .collect();
    for handle in handles {
        let err = handle.join().expect("endpoint").expect("hello must fail");
        match err {
            TransportError::Hello { mismatch, .. } => {
                assert_eq!(mismatch.field, HelloField::TickBase)
            }
            other => panic!("expected tick-base mismatch, got {other}"),
        }
    }
}

/// Agreeing tick bases pass the handshake and leave the transcript
/// untouched: the tick base feeds round numbering, not delivery bytes.
#[test]
fn agreed_tick_base_preserves_transcript() {
    let mut spec = SocketSpec::new(16, 2, "diff/tickbase-ok");
    let baseline = spec.run_sim();
    spec.tick_base = 7;
    let sim = spec.run_sim();
    let fleet = run_loopback_fleet(&spec);
    assert_eq!(sim.transcript, baseline.transcript);
    for run in &fleet {
        assert_eq!(run.transcript, baseline.transcript);
    }
}
