//! Property-based scalar-equivalence tests for the multi-lane batched
//! SHA-256 engine (ISSUE 5): over arbitrary batch shapes, every batched
//! API must produce output bit-identical to the scalar streaming core it
//! replaces — that identity is what keeps transcript digests, golden
//! chaos verdicts, and cert-cache keys unchanged.

use pba_crypto::merkle::{hash_leaf, hash_leaf_batch, hash_node, hash_node_batch, MerkleTree};
use pba_crypto::prg::Prg;
use pba_crypto::sha256::{batch_digest, batch_digest_prefixed, Digest, Sha256, LANES};
use proptest::prelude::*;
use rand::RngCore;

/// Arbitrary ragged batches: between 0 and 3× the lane width inputs, each
/// up to a few blocks long so single-block, boundary, and multi-block
/// schedules all appear.
fn ragged_batches() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..200),
        0..(3 * LANES),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn batch_digest_equals_scalar_on_ragged_batches(inputs in ragged_batches()) {
        let refs: Vec<&[u8]> = inputs.iter().map(|v| v.as_slice()).collect();
        let batched = batch_digest(&refs);
        let scalar: Vec<Digest> = refs.iter().map(|i| Sha256::digest(i)).collect();
        prop_assert_eq!(batched, scalar);
    }

    #[test]
    fn batch_digest_equals_scalar_on_uniform_batches(
        len in 0usize..300,
        count in 0usize..(2 * LANES + 1),
        byte in any::<u8>(),
    ) {
        // Uniform lengths exercise the full-lane-group path (all inputs
        // share one padded block count), including the 55/56/64/65-byte
        // padding boundaries when `len` lands there.
        let inputs: Vec<Vec<u8>> = (0..count)
            .map(|i| vec![byte.wrapping_add(i as u8); len])
            .collect();
        let refs: Vec<&[u8]> = inputs.iter().map(|v| v.as_slice()).collect();
        let batched = batch_digest(&refs);
        let scalar: Vec<Digest> = refs.iter().map(|i| Sha256::digest(i)).collect();
        prop_assert_eq!(batched, scalar);
    }

    #[test]
    fn padding_boundaries_survive_batching(byte in any::<u8>()) {
        // One input at every FIPS 180-4 boundary length, hashed as one
        // ragged batch: empty, one-below/at/above the 55-byte single-block
        // padding limit, and the 64/65-byte block edges.
        let inputs: Vec<Vec<u8>> = [0usize, 1, 54, 55, 56, 63, 64, 65, 119, 120, 128]
            .iter()
            .map(|&len| vec![byte; len])
            .collect();
        let refs: Vec<&[u8]> = inputs.iter().map(|v| v.as_slice()).collect();
        let batched = batch_digest(&refs);
        let scalar: Vec<Digest> = refs.iter().map(|i| Sha256::digest(i)).collect();
        prop_assert_eq!(batched, scalar);
    }

    #[test]
    fn prefixed_batches_equal_concatenated_scalar(
        prefix in proptest::collection::vec(any::<u8>(), 0..70),
        inputs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..100), 0..(2 * LANES)),
    ) {
        let refs: Vec<&[u8]> = inputs.iter().map(|v| v.as_slice()).collect();
        let batched = batch_digest_prefixed(&prefix, &refs);
        let scalar: Vec<Digest> = refs
            .iter()
            .map(|body| {
                let mut h = Sha256::new();
                h.update(&prefix);
                h.update(body);
                h.finalize()
            })
            .collect();
        prop_assert_eq!(batched, scalar);
    }

    #[test]
    fn batched_merkle_build_equals_scalar_roots(leaf_count in 1usize..=257) {
        let digests: Vec<Digest> = (0..leaf_count as u64)
            .map(|i| Sha256::digest(&i.to_le_bytes()))
            .collect();
        let batched = MerkleTree::from_leaf_digests(digests.clone());
        let scalar = MerkleTree::from_leaf_digests_scalar(digests);
        prop_assert_eq!(batched.root(), scalar.root());
        // Proofs from either tree verify against the other's root.
        let idx = leaf_count / 2;
        prop_assert_eq!(batched.prove(idx), scalar.prove(idx));
    }

    #[test]
    fn batched_leaf_and_node_hashing_equal_scalar(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..60), 1..20)
    ) {
        let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
        let leaves = hash_leaf_batch(&refs);
        let scalar_leaves: Vec<Digest> = refs.iter().map(|p| hash_leaf(p)).collect();
        prop_assert_eq!(&leaves, &scalar_leaves);

        let pairs: Vec<(Digest, Digest)> = leaves
            .iter()
            .zip(leaves.iter().rev())
            .map(|(a, b)| (*a, *b))
            .collect();
        let nodes = hash_node_batch(&pairs);
        let scalar_nodes: Vec<Digest> = pairs.iter().map(|(a, b)| hash_node(a, b)).collect();
        prop_assert_eq!(nodes, scalar_nodes);
    }

    #[test]
    fn prg_bulk_expansion_equals_scalar(
        seed in any::<[u8; 16]>(),
        skew in 0usize..40,
        len in 0usize..2000,
    ) {
        let mut bulk = Prg::from_seed_bytes(&seed);
        let mut scalar = Prg::from_seed_bytes(&seed);
        let mut pre = vec![0u8; skew];
        bulk.fill_bytes(&mut pre);
        scalar.fill_bytes_scalar(&mut pre);
        let mut a = vec![0u8; len];
        let mut b = vec![0u8; len];
        bulk.fill_bytes(&mut a);
        scalar.fill_bytes_scalar(&mut b);
        prop_assert_eq!(a, b);
        // Post-call states agree: the next draw is identical.
        prop_assert_eq!(bulk.next_u64(), scalar.next_u64());
    }
}
