//! Hostile-input robustness: decoding arbitrary attacker-controlled bytes
//! must never panic, over-allocate, or mis-verify — for every wire type a
//! receiver processes.

use pba_core::coin::CoinMsg;
use pba_core::dolev_strong::DsMessage;
use pba_core::phase_king::PkMsg;
use pba_core::vss_coin::VssCoinMsg;
use pba_crypto::codec::decode_from_slice;
use pba_crypto::mss::MssSignature;
use pba_crypto::prg::Prg;
use pba_crypto::sha256::Digest;
use pba_srds::multisig::MultisigSignature;
use pba_srds::owf::{OwfSignature, OwfSrds};
use pba_srds::snark::{SnarkSignature, SnarkSrds};
use pba_srds::traits::{PkiBoard, Srds};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn decoding_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Every receiver-facing message type must decode defensively.
        let _ = decode_from_slice::<PkMsg<u8>>(&bytes);
        let _ = decode_from_slice::<PkMsg<Digest>>(&bytes);
        let _ = decode_from_slice::<CoinMsg>(&bytes);
        let _ = decode_from_slice::<VssCoinMsg>(&bytes);
        let _ = decode_from_slice::<DsMessage>(&bytes);
        let _ = decode_from_slice::<MssSignature>(&bytes);
        let _ = decode_from_slice::<OwfSignature>(&bytes);
        let _ = decode_from_slice::<SnarkSignature>(&bytes);
        let _ = decode_from_slice::<MultisigSignature>(&bytes);
    }

    #[test]
    fn bitflipped_signatures_never_verify(
        seed in any::<[u8; 8]>(),
        flip_byte in 0usize..4096,
        flip_bit in 0u8..8,
    ) {
        // Flip one bit anywhere in a valid encoded aggregate: the decoded
        // result must either fail to decode or fail to verify (SNARK
        // scheme; the certificate binds every byte).
        let scheme = SnarkSrds::with_defaults();
        let mut prg = Prg::from_seed_bytes(&seed);
        let board = PkiBoard::establish(&scheme, 24, &mut prg);
        let keys = board.prepare(&scheme);
        let sigs: Vec<_> = (0..24u64)
            .filter_map(|i| scheme.sign(&board.pp, i, &board.sks[i as usize], b"m"))
            .collect();
        let agg = scheme.aggregate(&board.pp, &keys, b"m", &sigs).unwrap();
        let mut bytes = pba_crypto::codec::encode_to_vec(&agg);
        let pos = flip_byte % bytes.len();
        bytes[pos] ^= 1 << flip_bit;
        if let Ok(mangled) = decode_from_slice::<SnarkSignature>(&bytes) {
            prop_assert!(
                !scheme.verify(&board.pp, &keys, b"m", &mangled),
                "bit flip at byte {pos} still verified"
            );
        }
    }

    #[test]
    fn owf_mangled_aggregates_never_overcount(
        seed in any::<[u8; 8]>(),
        drop_mask in any::<u64>(),
    ) {
        // Arbitrarily drop entries from a valid OWF aggregate: the count of
        // *valid* entries can only shrink, so verification never accepts a
        // sub-threshold mangle.
        let scheme = OwfSrds::with_defaults();
        let mut prg = Prg::from_seed_bytes(&seed);
        let board = PkiBoard::establish(&scheme, 256, &mut prg);
        let keys = board.prepare(&scheme);
        let sigs: Vec<_> = (0..256u64)
            .filter_map(|i| scheme.sign(&board.pp, i, &board.sks[i as usize], b"m"))
            .collect();
        prop_assume!(!sigs.is_empty());
        let agg = scheme.aggregate(&board.pp, &keys, b"m", &sigs).unwrap();
        let kept: Vec<_> = agg
            .entries
            .iter()
            .enumerate()
            .filter(|(i, _)| drop_mask >> (i % 64) & 1 == 1)
            .map(|(_, e)| e.clone())
            .collect();
        let threshold = board.pp.threshold;
        let mangled = OwfSignature { entries: kept };
        let verified = scheme.verify(&board.pp, &keys, b"m", &mangled);
        prop_assert_eq!(verified, mangled.entries.len() >= threshold);
    }
}
