//! Property tests for the timing-fault subsystem: seeded link delays are
//! pure functions of `(key, link, tick)`, partitions that heal within the
//! granted slack never cost agreement, the delay queue conserves every
//! staged message (delivered, expired, or still in flight — never silently
//! lost), and the sequential and threaded round engines produce identical
//! delivery transcripts under every timing strategy in the catalogue.

use pba_core::phase_king::{rounds_for, PhaseKing};
use pba_crypto::prg::Prg;
use pba_crypto::sha256::Digest;
use pba_net::faults::{LatencyDist, StrategySpec, TimingModel};
use pba_net::runner::{
    run_phase, run_phase_driven, run_phase_threaded, RoundDriver, SilentAdversary,
};
use pba_net::{Ctx, Envelope, Machine, Network, PartyId};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// A machine that broadcasts its round number to every peer for `quota`
/// rounds, then stops — enough traffic to exercise the delay queue from
/// every link each round.
struct Chatter {
    id: PartyId,
    n: u64,
    quota: u64,
    rounds: u64,
}

impl Machine for Chatter {
    fn on_round(&mut self, ctx: &mut Ctx<'_>, inbox: &[Envelope]) {
        for env in inbox {
            ctx.charge_receive(env);
        }
        let round = ctx.round();
        if round < self.quota {
            for to in (0..self.n).map(PartyId) {
                if to != self.id {
                    ctx.send(to, &round);
                }
            }
        }
        self.rounds += 1;
    }
    fn is_done(&self) -> bool {
        self.rounds >= self.quota
    }
}

fn phase_king_committee(
    c: usize,
    corrupted: &BTreeSet<PartyId>,
) -> BTreeMap<PartyId, PhaseKing<u8>> {
    let committee: Vec<PartyId> = (0..c as u64).map(PartyId).collect();
    committee
        .iter()
        .filter(|p| !corrupted.contains(p))
        .map(|&p| (p, PhaseKing::new(committee.clone(), p, (p.0 % 2) as u8)))
        .collect()
}

/// Engine selector for the transcript-equality property.
#[derive(Clone, Copy, Debug)]
enum Engine {
    Seq,
    Threaded(usize),
    Driven(usize),
}

/// Runs a phase-king committee under `spec`'s timing model on a fresh
/// transcript-enabled network and returns (transcript, honest outputs).
fn run_committee_under(
    spec: &StrategySpec,
    c: usize,
    seed: &[u8],
    engine: Engine,
) -> (Vec<Digest>, BTreeMap<PartyId, u8>) {
    let corrupted = BTreeSet::new();
    let mut net = Network::new(c);
    net.enable_transcript();
    let prg = Prg::from_seed_bytes(seed);
    if let Some(model) = spec.timing_model(&corrupted, c, &prg) {
        net.set_timing(model);
    }
    let ticks = spec.round_budget();
    let driver = if ticks > 1 {
        RoundDriver::PartialSynchrony { ticks }
    } else {
        RoundDriver::Lockstep
    };
    let budget = rounds_for(c) as u64 + 6 + spec.round_slack(driver.ticks());
    let mut adversary = SilentAdversary::new(corrupted.clone());
    let mut machines = phase_king_committee(c, &corrupted);
    {
        let mut erased: BTreeMap<PartyId, Box<dyn Machine + Send + '_>> = machines
            .iter_mut()
            .map(|(&id, m)| (id, Box::new(m) as Box<dyn Machine + Send + '_>))
            .collect();
        match engine {
            Engine::Seq => {
                run_phase(&mut net, &mut erased, &mut adversary, budget);
            }
            Engine::Threaded(threads) => {
                run_phase_threaded(&mut net, &mut erased, &mut adversary, budget, threads);
            }
            Engine::Driven(threads) => {
                run_phase_driven(
                    &mut net,
                    &mut erased,
                    &mut adversary,
                    budget,
                    driver,
                    threads,
                );
            }
        }
    }
    let transcript = net.transcript().expect("transcript enabled").to_vec();
    let outputs = machines
        .iter()
        .filter_map(|(&id, m)| m.output().map(|&v| (id, v)))
        .collect();
    (transcript, outputs)
}

/// The timing strategies of the built-in catalogue.
fn timing_catalogue() -> Vec<StrategySpec> {
    StrategySpec::catalogue()
        .into_iter()
        .filter(|s| {
            let l = s.label();
            l.contains("delay") || l.contains("partition") || l.contains("churn")
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn delay_schedules_are_pure_and_seed_deterministic(
        key in any::<[u8; 32]>(),
        other_key in any::<[u8; 32]>(),
        max in 1u64..4,
    ) {
        let dist = LatencyDist::Uniform { max };
        let model = TimingModel::new(key, Some(dist), None, vec![]);
        let again = TimingModel::new(key, Some(dist), None, vec![]);
        let sibling = TimingModel::new(other_key, Some(dist), None, vec![]);
        let mut differs = false;
        for from in (0..8u64).map(PartyId) {
            for to in (0..8u64).map(PartyId) {
                for tick in 0..4u64 {
                    let d = model.delay(from, to, tick);
                    // Pure in (key, link, tick): recomputation and an
                    // identically-keyed model agree call after call.
                    prop_assert_eq!(d, model.delay(from, to, tick));
                    prop_assert_eq!(d, again.delay(from, to, tick));
                    prop_assert!(d <= dist.max_delay());
                    if key != other_key && d != sibling.delay(from, to, tick) {
                        differs = true;
                    }
                }
            }
        }
        // A different seed reshuffles the schedule somewhere (256
        // uniform samples can only collide with negligible probability).
        if key != other_key {
            prop_assert!(differs, "link schedule ignored the timing key");
        }
    }

    #[test]
    fn healed_partitions_never_cost_agreement(
        c in 7usize..14,
        t_frac in 0usize..3,
        split in 1u64..13,
        heal in 0u64..6,
        seed in any::<[u8; 32]>(),
    ) {
        // t < c/3 corrupted (silent) members plus a one-way partition
        // that heals at `heal`: with the matching slack, phase-king must
        // still complete in agreement — the post-heal phases realign
        // whatever the blocked links did early on.
        let t = (c - 1) / 3;
        let corrupt_count = (t * t_frac) / 2;
        let corrupted: BTreeSet<PartyId> =
            ((c - corrupt_count)..c).map(|p| PartyId(p as u64)).collect();
        let split = split.min(c as u64 - 1);
        let mut net = Network::new(c);
        net.set_timing(TimingModel::new(
            seed,
            None,
            Some((split, Some(heal))),
            vec![],
        ));
        let mut adversary = SilentAdversary::new(corrupted.clone());
        let mut machines = phase_king_committee(c, &corrupted);
        let outcome = {
            let mut erased: BTreeMap<PartyId, Box<dyn Machine + Send + '_>> = machines
                .iter_mut()
                .map(|(&id, m)| (id, Box::new(m) as Box<dyn Machine + Send + '_>))
                .collect();
            run_phase_driven(
                &mut net,
                &mut erased,
                &mut adversary,
                rounds_for(c) as u64 + 6 + heal,
                RoundDriver::Lockstep,
                1,
            )
        };
        prop_assert!(outcome.completed, "phase-king hung past the heal");
        let outputs: BTreeSet<u8> = machines
            .values()
            .map(|m| *m.output().expect("terminated"))
            .collect();
        prop_assert_eq!(outputs.len(), 1, "healed partition cost agreement");
    }

    #[test]
    fn every_staged_message_is_delivered_expired_or_in_flight(
        n in 3usize..8,
        max in 0u64..3,
        ticks in 1u64..4,
        split_raw in 0u64..8,
        churned in 0usize..3,
        up in 1u64..12,
        seed in any::<[u8; 32]>(),
        quota in 2u64..6,
    ) {
        // A composed timing model — latency, optional one-way partition,
        // and churn — against all-to-all chatter: the delay queue must
        // account for every staged envelope exactly once.
        let split = (split_raw > 0).then_some(split_raw);
        let churn: Vec<(PartyId, u64, u64)> = (0..churned.min(n - 1))
            .map(|p| (PartyId(p as u64), 1, 1 + up))
            .collect();
        let mut net = Network::new(n);
        net.set_timing(TimingModel::new(
            seed,
            Some(LatencyDist::Uniform { max }),
            split.map(|s| (s.min(n as u64 - 1), Some(3))),
            churn,
        ));
        let mut adversary = SilentAdversary::new(BTreeSet::new());
        let mut machines: BTreeMap<PartyId, Box<dyn Machine + Send>> = (0..n as u64)
            .map(PartyId)
            .map(|id| {
                (
                    id,
                    Box::new(Chatter {
                        id,
                        n: n as u64,
                        quota,
                        rounds: 0,
                    }) as Box<dyn Machine + Send>,
                )
            })
            .collect();
        run_phase_driven(
            &mut net,
            &mut machines,
            &mut adversary,
            quota + max + 4,
            RoundDriver::PartialSynchrony { ticks },
            1,
        );
        let stats = net.timing_stats();
        prop_assert_eq!(
            stats.staged,
            stats.delivered
                + stats.expired_partition
                + stats.expired_offline
                + net.in_flight_len() as u64,
            "delay queue lost or duplicated a message: {:?}",
            stats
        );
        prop_assert!(stats.staged > 0, "chatter generated no traffic");
    }

    #[test]
    fn engines_agree_under_every_timing_spec(seed in any::<[u8; 8]>()) {
        // For every timing strategy in the catalogue: the legacy
        // sequential runner and the threaded runner (lockstep semantics)
        // produce identical delivery transcripts, and the explicit driver
        // is thread-count-invariant — the determinism anchor that keeps
        // chaos repro lines exact.
        let specs = timing_catalogue();
        prop_assert!(specs.len() >= 5, "timing catalogue shrank");
        for spec in &specs {
            let (t_seq, o_seq) = run_committee_under(spec, 12, &seed, Engine::Seq);
            let (t_thr, o_thr) = run_committee_under(spec, 12, &seed, Engine::Threaded(4));
            prop_assert_eq!(&t_seq, &t_thr, "seq vs threaded diverged on {}", spec.label());
            prop_assert_eq!(&o_seq, &o_thr, "outputs diverged on {}", spec.label());
            let (t_d1, o_d1) = run_committee_under(spec, 12, &seed, Engine::Driven(1));
            let (t_d4, o_d4) = run_committee_under(spec, 12, &seed, Engine::Driven(4));
            prop_assert_eq!(&t_d1, &t_d4, "driven 1 vs 4 threads diverged on {}", spec.label());
            prop_assert_eq!(&o_d1, &o_d4, "driven outputs diverged on {}", spec.label());
        }
    }
}
