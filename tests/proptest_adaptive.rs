//! Property tests for the adaptive post-setup adversary and the
//! byzantine-robust redundant-path aggregation.
//!
//! * Adaptive target selection is a pure function of the established tree
//!   and the PRG seed, and never exceeds its corruption budget.
//! * The robust ascent delivers the honest value whenever corrupted
//!   members are a strict minority of every committee, for arbitrary
//!   sizes, placements, and garbled adversarial copies.

use pba_aetree::analysis::adaptive_targets;
use pba_aetree::params::TreeParams;
use pba_aetree::robust::{ascend, dedup_committee, robust_input_fanin, strict_majority};
use pba_aetree::tree::Tree;
use pba_crypto::prg::Prg;
use pba_net::{Network, PartyId};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// True when `corrupt` is a strict minority of every committee's distinct
/// members — the tolerance bound of the robust ascent.
fn strict_minority_everywhere(tree: &Tree, corrupt: &BTreeSet<PartyId>) -> bool {
    (0..tree.height()).all(|level| {
        (0..tree.nodes_at_level(level)).all(|node| {
            let members = dedup_committee(tree.committee(level, node));
            let bad = members.iter().filter(|m| corrupt.contains(m)).count();
            2 * bad < members.len()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn adaptive_targets_deterministic_and_bounded(
        n in 32usize..160,
        z in 2usize..4,
        budget in 0usize..64,
        seed in any::<[u8; 8]>(),
    ) {
        let tree = Tree::build(&TreeParams::scaled(n, z), &seed);
        let a = adaptive_targets(&tree, budget, &mut Prg::from_seed_bytes(&seed));
        let b = adaptive_targets(&tree, budget, &mut Prg::from_seed_bytes(&seed));
        prop_assert_eq!(&a, &b, "adaptive targets not deterministic per seed");
        // The plan spends its budget exactly (capped by the party count)
        // and never names a party outside the run.
        prop_assert_eq!(a.len(), budget.min(n));
        prop_assert!(a.iter().all(|p| p.index() < n));
        // A different seed may pick different filler targets, but the
        // budget discipline is seed-independent.
        let mut other_seed = seed;
        other_seed[0] ^= 0xff;
        let c = adaptive_targets(&tree, budget, &mut Prg::from_seed_bytes(&other_seed));
        prop_assert_eq!(c.len(), budget.min(n));
    }

    #[test]
    fn ascent_delivers_honest_value_under_strict_minority(
        n in 48usize..128,
        t in 0usize..5,
        honest_value in any::<u64>(),
        garble in any::<u64>(),
        seed in any::<[u8; 8]>(),
    ) {
        let tree = Tree::build(&TreeParams::scaled(n, 2), &seed);
        let corrupt = CorruptionSample { n, t, seed }.materialize();
        prop_assume!(strict_minority_everywhere(&tree, &corrupt));

        let mut net = Network::new(n);
        let leaves = tree.nodes_at_level(0);
        // Corrupted members inject arbitrary garbage (or withhold when the
        // garbage collides with the honest value — the worst they can do).
        let evil = if garble == honest_value { None } else { Some(garble) };
        let out = ascend(
            &mut net,
            &tree,
            &corrupt,
            vec![Some(honest_value); leaves],
            |_net, _level, _node, winners: &[Option<u64>]| strict_majority(winners),
            |_, _, _| evil,
            |_| 8,
            pba_net::wire::tag::FANIN,
        );
        prop_assert_eq!(out.root_value, Some(honest_value),
            "strict-minority corruption altered the root");
        let root_level = tree.height() - 1;
        prop_assert_eq!(out.honest_values[root_level][0], Some(honest_value));
    }

    #[test]
    fn input_fanin_delivers_unanimous_byte_under_strict_minority(
        n in 48usize..128,
        t in 0usize..5,
        input in any::<u8>(),
        evil in any::<u8>(),
        seed in any::<[u8; 8]>(),
    ) {
        let tree = Tree::build(&TreeParams::scaled(n, 2), &seed);
        let corrupt = CorruptionSample { n, t, seed }.materialize();
        prop_assume!(strict_minority_everywhere(&tree, &corrupt));

        let mut net = Network::new(n);
        let out = robust_input_fanin(&mut net, &tree, &corrupt, &vec![input; n], Some(evil));
        prop_assert_eq!(out.root_value, Some(input));
    }

    #[test]
    fn strict_majority_matches_specification(
        raw in proptest::collection::vec(0u8..8, 0..24),
    ) {
        // Values 0..4 are votes, 4..8 model silent members.
        let copies: Vec<Option<u8>> = raw
            .iter()
            .map(|&v| if v < 4 { Some(v) } else { None })
            .collect();
        let winner = strict_majority(&copies);
        match winner {
            Some(v) => {
                let count = copies.iter().filter(|c| **c == Some(v)).count();
                prop_assert!(2 * count > copies.len(),
                    "winner {v} lacks a strict majority");
            }
            None => {
                for v in 0u8..4 {
                    let count = copies.iter().filter(|c| **c == Some(v)).count();
                    prop_assert!(2 * count <= copies.len(),
                        "missed a strict-majority winner {v}");
                }
            }
        }
    }
}

/// A deterministic pseudorandom corruption sample used by the ascent
/// properties (kept outside the `proptest!` strategies so the rejection
/// filter sees the same set the test body uses).
struct CorruptionSample {
    n: usize,
    t: usize,
    seed: [u8; 8],
}

impl CorruptionSample {
    fn materialize(&self) -> BTreeSet<PartyId> {
        let mut prg = Prg::from_seed_label(&self.seed, "proptest-corrupt");
        let mut set = BTreeSet::new();
        while set.len() < self.t.min(self.n) {
            set.insert(PartyId(prg.gen_range(self.n as u64)));
        }
        set
    }
}
