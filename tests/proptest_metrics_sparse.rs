// The vendored proptest macro expands deeply for multi-assert blocks.
#![recursion_limit = "512"]
//! ISSUE 8 differential gate: the sparse [`MetricsTable`] is
//! observationally identical to the dense reference implementation
//! ([`DenseMetricsTable`], the pre-sparse table kept verbatim) — every
//! per-party counter, peer set, tag marginal, report, breakdown, and
//! conservation verdict — over (a) random charge sequences and (b) full
//! `π_ba` runs across the whole chaos catalogue with the in-session
//! dense shadow armed.

use pba_bench::chaos::default_cases;
use pba_core::protocol::{AdversaryProfile, BaConfig, KeyPolicy, Session};
use pba_net::metrics::DenseMetricsTable;
use pba_net::{MetricsTable, PartyId};
use pba_srds::snark::SnarkSrds;
use proptest::prelude::*;
use proptest::TestRng;
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One metrics mutation, mirroring the table's full mutating surface.
#[derive(Clone, Debug)]
enum Op {
    Send {
        from: usize,
        to: usize,
        bytes: usize,
        tag: Option<u8>,
    },
    Receive {
        to: usize,
        from: usize,
        bytes: usize,
        tag: Option<u8>,
    },
    Synthetic {
        party: usize,
        bytes: u64,
        msgs: u64,
        tag: Option<u8>,
    },
    Link {
        from: usize,
        to: usize,
        bytes: u64,
        msgs: u64,
        tag: Option<u8>,
    },
    BumpRound,
}

/// One random op over `n` parties, drawn from a seeded [`TestRng`] (the
/// vendored proptest stand-in has no combinators, so the op shape is
/// expanded here instead of via `prop_oneof`).
fn random_op(rng: &mut TestRng, n: usize) -> Op {
    let n = n as u64;
    fn tag(rng: &mut TestRng) -> Option<u8> {
        if rng.below(2) == 0 {
            None
        } else {
            Some(rng.below(8) as u8)
        }
    }
    match rng.below(5) {
        0 => Op::Send {
            from: rng.below(n) as usize,
            to: rng.below(n) as usize,
            bytes: rng.below(4096) as usize,
            tag: tag(rng),
        },
        1 => Op::Receive {
            to: rng.below(n) as usize,
            from: rng.below(n) as usize,
            bytes: rng.below(4096) as usize,
            tag: tag(rng),
        },
        2 => Op::Synthetic {
            party: rng.below(n) as usize,
            bytes: rng.below(4096),
            msgs: rng.below(8),
            tag: tag(rng),
        },
        3 => Op::Link {
            from: rng.below(n) as usize,
            to: rng.below(n) as usize,
            bytes: rng.below(4096),
            msgs: rng.below(8),
            tag: tag(rng),
        },
        _ => Op::BumpRound,
    }
}

/// The parties an op touches (cells it may materialize).
fn touched(op: &Op) -> Vec<usize> {
    match *op {
        Op::Send { from, to, .. } | Op::Receive { to, from, .. } | Op::Link { from, to, .. } => {
            vec![from, to]
        }
        Op::Synthetic { party, .. } => vec![party],
        Op::BumpRound => vec![],
    }
}

fn apply_sparse(table: &mut MetricsTable, op: &Op) {
    match *op {
        Op::Send {
            from,
            to,
            bytes,
            tag,
        } => match tag {
            Some(t) => table.record_send_tagged(PartyId(from as u64), PartyId(to as u64), bytes, t),
            None => table.record_send(PartyId(from as u64), PartyId(to as u64), bytes),
        },
        Op::Receive {
            to,
            from,
            bytes,
            tag,
        } => match tag {
            Some(t) => {
                table.record_receive_tagged(PartyId(to as u64), PartyId(from as u64), bytes, t)
            }
            None => table.record_receive(PartyId(to as u64), PartyId(from as u64), bytes),
        },
        Op::Synthetic {
            party,
            bytes,
            msgs,
            tag,
        } => match tag {
            Some(t) => table.charge_synthetic_tagged(PartyId(party as u64), bytes, msgs, t),
            None => table.charge_synthetic(PartyId(party as u64), bytes, msgs),
        },
        Op::Link {
            from,
            to,
            bytes,
            msgs,
            tag,
        } => match tag {
            Some(t) => table.charge_synthetic_link_tagged(
                PartyId(from as u64),
                PartyId(to as u64),
                bytes,
                msgs,
                t,
            ),
            None => {
                table.charge_synthetic_link(PartyId(from as u64), PartyId(to as u64), bytes, msgs)
            }
        },
        Op::BumpRound => table.bump_round(),
    }
}

fn apply_dense(table: &mut DenseMetricsTable, op: &Op) {
    match *op {
        Op::Send {
            from,
            to,
            bytes,
            tag,
        } => match tag {
            Some(t) => table.record_send_tagged(PartyId(from as u64), PartyId(to as u64), bytes, t),
            None => table.record_send(PartyId(from as u64), PartyId(to as u64), bytes),
        },
        Op::Receive {
            to,
            from,
            bytes,
            tag,
        } => match tag {
            Some(t) => {
                table.record_receive_tagged(PartyId(to as u64), PartyId(from as u64), bytes, t)
            }
            None => table.record_receive(PartyId(to as u64), PartyId(from as u64), bytes),
        },
        Op::Synthetic {
            party,
            bytes,
            msgs,
            tag,
        } => match tag {
            Some(t) => table.charge_synthetic_tagged(PartyId(party as u64), bytes, msgs, t),
            None => table.charge_synthetic(PartyId(party as u64), bytes, msgs),
        },
        Op::Link {
            from,
            to,
            bytes,
            msgs,
            tag,
        } => match tag {
            Some(t) => table.charge_synthetic_link_tagged(
                PartyId(from as u64),
                PartyId(to as u64),
                bytes,
                msgs,
                t,
            ),
            None => {
                table.charge_synthetic_link(PartyId(from as u64), PartyId(to as u64), bytes, msgs)
            }
        },
        Op::BumpRound => table.bump_round(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The sparse table and an *independently maintained* dense reference
    /// agree on every observable after an arbitrary charge sequence —
    /// and the built-in shadow (which mirrors each mutation internally)
    /// reports no divergence either.
    #[test]
    fn sparse_matches_dense_on_random_charges(
        n in 2usize..48,
        ops_seed in any::<u64>(),
        len in 0usize..160,
    ) {
        let mut rng = TestRng::new(ops_seed, "metrics-ops", 0);
        let ops: Vec<Op> = (0..len).map(|_| random_op(&mut rng, n)).collect();
        let mut sparse = MetricsTable::new(n);
        sparse.enable_shadow();
        let mut dense = DenseMetricsTable::new(n);
        let mut touched_parties: BTreeSet<usize> = BTreeSet::new();
        for op in &ops {
            apply_sparse(&mut sparse, op);
            apply_dense(&mut dense, op);
            touched_parties.extend(touched(op));
        }

        // The built-in differential oracle.
        prop_assert_eq!(sparse.shadow_divergence(), None);

        // Independent comparison against the reference maintained here.
        prop_assert_eq!(sparse.len(), dense.len());
        prop_assert_eq!(sparse.rounds(), dense.rounds());
        for i in 0..n {
            let id = PartyId(i as u64);
            prop_assert_eq!(sparse.party(id), dense.party(id).clone(), "party {}", i);
        }
        prop_assert_eq!(sparse.report(), dense.report());
        let ids: Vec<PartyId> = (0..n as u64).map(PartyId).collect();
        prop_assert_eq!(
            sparse.report_for(ids.iter().copied()),
            dense.report_for(ids.iter().copied())
        );
        let evens = ids.iter().copied().filter(|p| p.0 % 2 == 0);
        prop_assert_eq!(
            sparse.breakdown_for(evens.clone()),
            dense.breakdown_for(evens)
        );
        prop_assert_eq!(sparse.tags_conserve_totals(), dense.tags_conserve_totals());

        // Sparsity: only charged parties materialize cells.
        prop_assert!(sparse.allocated_cells() <= touched_parties.len());
    }
}

/// Full `π_ba` runs over the whole chaos catalogue with the in-session
/// dense shadow armed: every mutation the protocol performs is mirrored
/// into the dense reference, and the tables must be indistinguishable at
/// the end — the ISSUE 8 acceptance gate.
#[test]
fn chaos_catalogue_runs_without_sparse_dense_divergence() {
    let mut checked = 0usize;
    for case in default_cases(b"chaos-ci") {
        let config = BaConfig {
            n: case.n,
            z: 2,
            corruption: case.plan.clone(),
            profile: AdversaryProfile::Byzantine,
            seed: case.seed.clone(),
            establishment: case.establishment,
            chaos: Some(case.spec.clone()),
            threads: 1,
            key_policy: KeyPolicy::Eager,
            dense_shadow: true,
        };
        let scheme = SnarkSrds::with_defaults();
        let inputs = vec![1u8; case.n];
        let run = catch_unwind(AssertUnwindSafe(|| {
            let mut session = match Session::try_establish(&scheme, &config) {
                Ok(session) => session,
                // Structured establishment failure (corruption bound,
                // timing): no session, nothing to diff.
                Err(_) => return None,
            };
            let committee_inputs = session.robust_committee_inputs(&inputs);
            // The round may fail structurally under chaos; the metrics
            // tables must agree either way.
            let _ = session.try_certified_round(&committee_inputs);
            Some(session.net.metrics().shadow_divergence())
        }));
        match run {
            Ok(Some(None)) => checked += 1,
            Ok(Some(Some(divergence))) => {
                panic!(
                    "case `{}`: sparse/dense divergence: {divergence}",
                    case.key()
                )
            }
            Ok(None) => {}
            // Honest-side panics are chaos_sweep's invariant to flag.
            Err(_) => {}
        }
    }
    assert!(
        checked >= 40,
        "only {checked} catalogue cases produced a shadowed session"
    );
}
