//! Cross-crate integration tests for the corollaries: multi-execution
//! broadcast (Cor. 1.2(1)) and FHE-based MPC (Cor. 1.2(2)), plus the
//! Dolev–Strong contrast baseline.

use pba_core::dolev_strong::run_dolev_strong;
use pba_core::mpc::run_mpc;
use pba_srds::snark::{SnarkSrds, SnarkSrdsConfig};
use polylog_ba::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeMap;

#[test]
fn broadcast_with_rotating_senders() {
    // Corollary 1.2(1) allows different senders per execution; emulate by
    // running separate sessions and checking each delivers its sender's bit.
    let scheme = SnarkSrds::new(SnarkSrdsConfig {
        mss_bits: 32,
        mss_height: 2,
    });
    for (sender, value) in [(PartyId(0), 1u8), (PartyId(31), 0), (PartyId(63), 1)] {
        let config = BaConfig::honest(64, format!("rot-{sender}").as_bytes());
        let out = run_broadcasts(&scheme, &config, sender, &[value]);
        assert!(out.all_delivered, "sender {sender} failed");
        assert_eq!(out.executions[0].y, value);
    }
}

#[test]
fn mpc_majority_function() {
    // A realistic functional: majority vote over private bits — MPC
    // subsumes BA itself (the paper's framing).
    let n = 64;
    let scheme = SnarkSrds::with_defaults();
    let config = BaConfig::honest(n, b"mpc-majority");
    let inputs: Vec<Vec<u8>> = (0..n).map(|i| vec![u8::from(i % 3 != 0)]).collect();
    let majority = |map: &BTreeMap<u64, Vec<u8>>| -> Vec<u8> {
        let ones = map.values().filter(|v| v == &&vec![1u8]).count();
        vec![u8::from(2 * ones > map.len())]
    };
    let out = run_mpc(&scheme, &config, &inputs, majority);
    assert_eq!(out.output, vec![1], "two thirds voted 1");
    assert!(out.outputs.iter().all(|o| o.as_deref() == Some(&[1u8][..])));
}

#[test]
fn dolev_strong_vs_certified_broadcast_resilience() {
    // Dolev–Strong survives t corruptions out of t+1 chain rounds even when
    // t is a large fraction — resilience the committee protocols cannot
    // offer — at quadratic cost. Here: 4 of 13 silent (> n/4).
    let corrupt: std::collections::BTreeSet<PartyId> = (9..13u64).map(PartyId).collect();
    let out = run_dolev_strong(13, 4, PartyId(0), 1, &corrupt, b"ds-vs");
    for i in 0..9 {
        assert_eq!(out.outputs[i], Some(1));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn broadcast_delivers_under_random_byzantine(seed in any::<[u8; 8]>(), sender_idx in 0u64..64, ell in 1usize..4) {
        let scheme = SnarkSrds::new(SnarkSrdsConfig { mss_bits: 32, mss_height: 2 });
        let mut config = BaConfig::byzantine(64, 6, &seed);
        // Ensure the sender is honest for the delivery check by retrying the
        // profile when the sampled corrupt set contains it: simplest is to
        // accept both cases — corrupt senders only require agreement.
        config.profile = AdversaryProfile::Byzantine;
        let values: Vec<u8> = (0..ell).map(|i| (i % 2) as u8).collect();
        let out = run_broadcasts(&scheme, &config, PartyId(sender_idx), &values);
        prop_assert!(out.all_delivered, "delivery/agreement failed");
    }

    #[test]
    fn mpc_xor_correct_over_random_inputs(seed in any::<[u8; 8]>(), len in 1usize..8) {
        let n = 48;
        let scheme = SnarkSrds::with_defaults();
        let config = BaConfig::honest(n, &seed);
        let mut prg = Prg::from_seed_bytes(&seed);
        let inputs: Vec<Vec<u8>> = (0..n)
            .map(|_| {
                let mut v = vec![0u8; len];
                rand::RngCore::fill_bytes(&mut prg, &mut v);
                v
            })
            .collect();
        let expected = inputs.iter().fold(vec![0u8; len], |mut acc, v| {
            for (a, b) in acc.iter_mut().zip(v) {
                *a ^= b;
            }
            acc
        });
        let out = run_mpc(&scheme, &config, &inputs, |map| {
            let mut acc = vec![0u8; len];
            for v in map.values() {
                for (a, b) in acc.iter_mut().zip(v) {
                    *a ^= b;
                }
            }
            acc
        });
        prop_assert_eq!(out.inputs_included, n);
        prop_assert_eq!(out.output, expected);
    }
}
